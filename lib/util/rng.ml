(* SplitMix64, implemented on unboxed native ints.

   OCaml's native int is 63 bits, so the 64-bit state and the scrambled
   output are carried as two 32-bit limbs (hi, lo). This keeps the hot
   path completely allocation-free: the Int64 formulation boxes roughly
   ten intermediates per draw, and the simulator draws once per memory
   operation and branch. The output sequence is bit-for-bit identical to
   the Int64 formulation (cross-checked in test_util).

   [zhi]/[zlo] are scratch registers holding the scrambled output of the
   latest draw; only [hi]/[lo] are generator state. *)

type t = {
  mutable hi : int;  (* state bits 32..63 *)
  mutable lo : int;  (* state bits 0..31 *)
  mutable zhi : int;
  mutable zlo : int;
}

let mask32 = 0xFFFFFFFF

let create seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32);
    lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    zhi = 0;
    zlo = 0;
  }

let copy t = { hi = t.hi; lo = t.lo; zhi = 0; zlo = 0 }

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* z <- z lxor (z lsr k), on the (zhi, zlo) limbs; 0 < k < 32. *)
let xor_shift t k =
  let shi = t.zhi lsr k in
  let slo = ((t.zhi land ((1 lsl k) - 1)) lsl (32 - k)) lor (t.zlo lsr k) in
  t.zhi <- t.zhi lxor shi;
  t.zlo <- t.zlo lxor slo

(* z <- z * (c1·2^32 + c0) mod 2^64. Native multiplication yields the
   exact low 63 bits of a product (wraparound is mod 2^63), so low-32
   extractions of 32x32 products are direct; only the high half of
   zlo·c0 needs a 16-bit limb split, because its bit 63 would be lost
   to the native wraparound. *)
let mul_const t c1 c0 =
  let a1 = t.zhi and a0 = t.zlo in
  let ah = a0 lsr 16 and al = a0 land 0xFFFF in
  let bh = c0 lsr 16 and bl = c0 land 0xFFFF in
  let low = al * bl in
  let mid = (ah * bl) + (al * bh) in
  let high = ah * bh in
  let tt = low + ((mid land 0xFFFF) lsl 16) in
  let p_lo = tt land mask32 in
  let p_hi = high + (mid lsr 16) + (tt lsr 32) in
  t.zlo <- p_lo;
  t.zhi <- (p_hi + (a0 * c1) + (a1 * c0)) land mask32

(* SplitMix64 step: advance by the golden gamma and scramble into
   (zhi, zlo). *)
let next t =
  let lo = t.lo + gamma_lo in
  t.lo <- lo land mask32;
  t.hi <- (t.hi + gamma_hi + (lo lsr 32)) land mask32;
  t.zhi <- t.hi;
  t.zlo <- t.lo;
  xor_shift t 30;
  mul_const t 0xBF58476D 0x1CE4E5B9;
  xor_shift t 27;
  mul_const t 0x94D049BB 0x133111EB;
  xor_shift t 31

let next_int64 t =
  next t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.zhi) 32)
    (Int64.of_int t.zlo)

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  next t;
  (* The Int64 formulation is (z lsr 1) rem bound. z lsr 1 is an
     unsigned 63-bit value — one bit more than a native int holds
     positively — so reduce limb-wise: z lsr 1 = zhi·2^31 + (zlo lsr 1).
     For bounds below 2^30 every intermediate stays under 2^60. *)
  if bound <= 0x40000000 then
    (((t.zhi mod bound) * (0x80000000 mod bound)) + (t.zlo lsr 1))
    mod bound
  else
    Int64.to_int
      (Int64.rem
         (Int64.logor
            (Int64.shift_left (Int64.of_int t.zhi) 31)
            (Int64.of_int (t.zlo lsr 1)))
         (Int64.of_int bound))

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  next t;
  (* (z lsr 11) has 53 bits: exact as a float *)
  float_of_int ((t.zhi lsl 21) lor (t.zlo lsr 11))
  /. 9007199254740992.0 *. bound

let bool t =
  next t;
  t.zlo land 1 = 1

(* Open-coded [float t 1.0 < p]: the uniform draw stays in registers
   instead of crossing a function boundary as a boxed float. *)
let bernoulli t p =
  next t;
  float_of_int ((t.zhi lsl 21) lor (t.zlo lsr 11)) /. 9007199254740992.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else begin
    let u = float t 1.0 in
    let u = if u <= 0.0 then min_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then min_float else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then min_float else u1 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let target = float t total in
  let rec pick i acc =
    if i = Array.length items - 1 then fst items.(i)
    else
      let acc = acc +. snd items.(i) in
      if target < acc then fst items.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
