(** Minimal dependency-free JSON: value type, compact serializer,
    recursive-descent parser.

    Numbers are [float]s; producers that need 64-bit round-trips (run
    seeds, IEEE-754 IPC bit images) store them as hex {e strings}. The
    serializer emits the shortest decimal that parses back to the same
    bits; non-finite numbers serialize as [null] (JSON has no literals
    for them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val escape_string : string -> string
(** A JSON string literal, quotes included. *)

val number_string : float -> string
(** Shortest decimal that parses back to the same bits: integers print
    bare ("3"), other finite values via %.12g or %.17g as needed.
    Behaviour on non-finite input is the caller's concern (the
    serializer maps those to [null] before calling this). *)

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing non-whitespace is an
    error. Objects preserve field order; duplicate keys are kept (the
    {!member} accessor returns the first). *)

(** {1 Accessors} — shape-tolerant lookups for ledger readers: each
    returns [None] on a type mismatch rather than raising. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
