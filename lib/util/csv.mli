(** Minimal CSV writer for exporting experiment data to plotting tools.

    Fields containing commas, quotes or newlines are quoted and escaped
    per RFC 4180. *)

val escape_field : string -> string

val to_string : header:string list -> string list list -> string

val atomically : path:string -> (out_channel -> unit) -> unit
(** Alias of {!Atomic_io.with_file}, kept for existing callers: readers
    observe either the old content or the complete new content, never a
    truncated file. New code should use {!Atomic_io} directly. *)

val write : path:string -> header:string list -> string list list -> unit
(** Writes the file, overwriting any existing content, via
    {!atomically} — a crash mid-write cannot leave a truncated CSV that
    downstream tooling would parse as valid. *)
