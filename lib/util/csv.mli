(** Minimal CSV writer for exporting experiment data to plotting tools.

    Fields containing commas, quotes or newlines are quoted and escaped
    per RFC 4180. *)

val escape_field : string -> string

val to_string : header:string list -> string list list -> string

val atomically : path:string -> (out_channel -> unit) -> unit
(** [atomically ~path f] runs [f] on a channel to [path ^ ".tmp"], then
    renames the temp file over [path]. Readers observe either the old
    content or the complete new content, never a truncated file; if [f]
    raises, the destination is untouched and the temp file is removed.
    The crash-safety primitive {!write} and
    [Vliw_experiments.Checkpoint] are built on. *)

val write : path:string -> header:string list -> string list list -> unit
(** Writes the file, overwriting any existing content, via
    {!atomically} — a crash mid-write cannot leave a truncated CSV that
    downstream tooling would parse as valid. *)
