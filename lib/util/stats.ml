(* Every aggregate here rejects the empty array with [Invalid_argument]
   instead of guessing a value. The historical behaviour — [assert] for
   the order statistics (which vanishes under -noassert) and a silent
   [0.0] from [mean] — let empty inputs flow through experiment
   aggregation unnoticed; now they fail loudly at the call site. *)

let require_nonempty fn xs =
  if Array.length xs = 0 then
    invalid_arg (Printf.sprintf "Stats.%s: empty array" fn)

let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  require_nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let geomean xs =
  require_nonempty "geomean" xs;
  let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
  exp (acc /. float_of_int (Array.length xs))

let stddev xs =
  require_nonempty "stddev" xs;
  let m = mean xs in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  sqrt (var /. float_of_int (Array.length xs))

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  require_nonempty "median" xs;
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  require_nonempty "percentile" xs;
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %g not in [0, 100]" p);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let quantile_exact xs p =
  require_nonempty "quantile_exact" xs;
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg
      (Printf.sprintf "Stats.quantile_exact: p = %g not in [0, 100]" p);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
  ys.(min (n - 1) (max 0 (rank - 1)))

let p50 xs = quantile_exact xs 50.0
let p95 xs = quantile_exact xs 95.0
let p99 xs = quantile_exact xs 99.0

let min_max xs =
  require_nonempty "min_max" xs;
  Array.fold_left
    (fun (mn, mx) x -> (min mn x, max mx x))
    (xs.(0), xs.(0))
    xs

let pct_diff a b = (a -. b) /. b *. 100.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  require_nonempty "summarize" xs;
  let mn, mx = min_max xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max
