type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
    Error
      (Printf.sprintf "unknown log level %S (expected debug|info|warn|error)"
         other)

type format = Human | Json

let format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "human" | "text" -> Ok Human
  | "json" | "ndjson" -> Ok Json
  | other ->
    Error (Printf.sprintf "unknown log format %S (expected human|json)" other)

type value = S of string | I of int | F of float | B of bool

type field = string * value

type t = {
  min_level : level;
  format : format;
  component : string;
  clock : unit -> float;
  t0 : float;
  emit : string -> unit;
}

let make ?(level = Info) ?(format = Human) ?(clock = Unix.gettimeofday)
    ~component emit =
  { min_level = level; format; component; clock; t0 = clock (); emit }

(* The silent logger: same [t0] discipline as a real one so a component
   can compute timestamps against it without caring whether anyone
   listens. *)
let null = make ~level:Error ~component:"" (fun _ -> ())

let with_component t component = { t with component }

let enabled t level = level_rank level >= level_rank t.min_level

(* Quote only when the raw string would be ambiguous on a space-split
   line; ids and enum-ish values stay unquoted for grep-ability. *)
let human_string s =
  let needs_quote =
    s = ""
    || String.exists (fun c -> c = ' ' || c = '"' || c = '=' || c < ' ') s
  in
  if needs_quote then Printf.sprintf "%S" s else s

let value_human = function
  | S s -> human_string s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%g" f
  | B b -> string_of_bool b

let value_json = function
  | S s -> Json.Str s
  | I i -> Json.Num (float_of_int i)
  | F f -> Json.Num f
  | B b -> Json.Bool b

let render t ~ts level msg fields =
  match t.format with
  | Human ->
    let b = Buffer.create 96 in
    Buffer.add_string b
      (Printf.sprintf "%9.3f %-5s %s: %s" ts (level_name level) t.component
         msg);
    List.iter
      (fun (k, v) ->
        Buffer.add_char b ' ';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b (value_human v))
      fields;
    Buffer.contents b
  | Json ->
    Json.to_string
      (Json.Obj
         (("ts", Json.Num ts)
         :: ("level", Json.Str (level_name level))
         :: ("component", Json.Str t.component)
         :: ("msg", Json.Str msg)
         :: List.map (fun (k, v) -> (k, value_json v)) fields))

let msg t level message fields =
  if enabled t level then begin
    let ts = t.clock () -. t.t0 in
    t.emit (render t ~ts level message fields)
  end

let debug t message fields = msg t Debug message fields
let info t message fields = msg t Info message fields
let warn t message fields = msg t Warn message fields
let error t message fields = msg t Error message fields
