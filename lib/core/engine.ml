type reject = { thread : int; cause : Conflict.failure }

type selection = {
  packet : Packet.t option;
  issued : int list;
  rejected : reject list;
}

let rec eval m ~routing ~rotation ~n ~rejects avail = function
  | Scheme.Thread i ->
    let hw = (i + rotation) mod n in
    avail.(hw)
  | Scheme.Merge { kind; impl = _; inputs } ->
    let packets =
      List.filter_map (eval m ~routing ~rotation ~n ~rejects avail) inputs
    in
    (match packets with
    | [] -> None
    | first :: rest ->
      let merge acc p =
        match Conflict.check m ~routing kind acc p with
        | None -> Packet.union acc p
        | Some cause ->
          (* The whole packet is denied: every thread it carries was
             refused issue at this merge block. *)
          List.iter
            (fun thread -> rejects := { thread; cause } :: !rejects)
            (Packet.thread_list p);
          acc
      in
      Some (List.fold_left merge first rest))

let select m ?(routing = Conflict.Flexible) scheme ?(rotation = 0) avail =
  let n = Scheme.n_threads scheme in
  assert (Array.length avail >= n);
  let rotation = ((rotation mod n) + n) mod n in
  let rejects = ref [] in
  match eval m ~routing ~rotation ~n ~rejects avail scheme with
  | None -> { packet = None; issued = []; rejected = [] }
  | Some p ->
    {
      packet = Some p;
      issued = Packet.thread_list p;
      rejected = List.sort (fun a b -> compare a.thread b.thread) !rejects;
    }

let select_instrs m ?routing scheme ?rotation instrs =
  let avail =
    Array.mapi
      (fun thread instr ->
        Option.map (fun i -> Packet.of_instr ~thread i) instr)
      instrs
  in
  select m ?routing scheme ?rotation avail
