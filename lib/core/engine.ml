type reject = { thread : int; cause : Conflict.failure }

type selection = {
  packet : Packet.t option;
  issued : int list;
  rejected : reject list;
}

(* Evaluates the scheme tree with pluggable union and conflict check.
   Each child subtree is evaluated and immediately merged into the
   accumulator (equivalent to evaluating all children first: sibling
   evaluations are independent); an accepted leaf appends its hardware
   port to [order], and a rejected subtree truncates back to the mark
   taken before it ran — its leaves are contiguous at the tail, since
   rejection happens right after the subtree finished. [order] thus ends
   as the in-order traversal of accepted leaves: the union order, which
   is what lets the memo table reconstruct a bit-identical packet on a
   hit. The fold passes options through physically and allocates only
   on union, so a cycle with one live candidate under a node costs
   nothing. *)
let rec eval ~union ~check ~rotation ~n ~rejects ~order ~len avail = function
  | Scheme.Thread i ->
    let hw = (i + rotation) mod n in
    (match avail.(hw) with
    | None -> None
    | Some _ as r ->
      order.(!len) <- hw;
      incr len;
      r)
  | Scheme.Merge { kind; impl = _; inputs } ->
    eval_children ~union ~check ~rotation ~n ~rejects ~order ~len avail kind
      None inputs

(* The fold over a merge block's children, as a top-level mutual
   recursion rather than a [List.fold_left] closure: dense cycles build
   one of these frames per merge node, so the closure allocation was
   per-cycle cost. *)
and eval_children ~union ~check ~rotation ~n ~rejects ~order ~len avail kind acc
    = function
  | [] -> acc
  | input :: rest ->
    let mark = !len in
    let acc =
      match
        eval ~union ~check ~rotation ~n ~rejects ~order ~len avail input
      with
      | None -> acc
      | Some (p : Packet.t) as r ->
        (match acc with
        | None -> r
        | Some accp ->
          (match check kind accp p with
          | None -> Some (union accp p)
          | Some cause ->
            (* The whole packet is denied: every thread it carries
               was refused issue at this merge block. *)
            len := mark;
            for thread = 0 to n - 1 do
              if p.threads land (1 lsl thread) <> 0 then
                rejects := { thread; cause } :: !rejects
            done;
            acc))
    in
    eval_children ~union ~check ~rotation ~n ~rejects ~order ~len avail kind acc
      rest

(* Returns the selection plus the union-order buffer and its length;
   only the memo table's miss path materializes the order as a list. *)
let select_core ?(union = Packet.union) ~check scheme ~rotation avail =
  let n = Scheme.n_threads scheme in
  assert (Array.length avail >= n);
  let rotation = ((rotation mod n) + n) mod n in
  let rejects = ref [] in
  let order = Array.make n 0 in
  let len = ref 0 in
  match eval ~union ~check ~rotation ~n ~rejects ~order ~len avail scheme with
  | None -> ({ packet = None; issued = []; rejected = [] }, order, 0)
  | Some p ->
    ( {
        packet = Some p;
        issued = Packet.thread_list p;
        rejected = List.sort (fun a b -> compare a.thread b.thread) !rejects;
      },
      order,
      !len )

let sel_of (sel, _, _) = sel

let select m ?(routing = Conflict.Flexible) scheme ?(rotation = 0) avail =
  sel_of (select_core ~check:(Conflict.check m ~routing) scheme ~rotation avail)

let select_reference m ?(routing = Conflict.Flexible) scheme ?(rotation = 0)
    avail =
  sel_of
    (select_core ~check:(Conflict.Reference.check m ~routing) scheme ~rotation
       avail)

let select_instrs m ?routing scheme ?rotation instrs =
  let avail =
    Array.mapi
      (fun thread instr ->
        Option.map (fun i -> Packet.of_instr m ~thread i) instr)
      instrs
  in
  select m ?routing scheme ?rotation avail

(* --- decision cache ---------------------------------------------------

   A scheme's selection is a pure function of (rotation, per-port
   signature): the conflict checks read nothing but the packets' masks,
   packed counts, and pinned-slot masks — exactly what a signature's
   intern id (Instr.signature, sg_id) identifies, so the key is one word
   per port. On a hit the full selection is replayed without evaluating
   the scheme tree, and the packet is rebuilt bit-identically by folding
   Packet.union over the live ports in the recorded union order. The key
   is staged in a per-table scratch buffer and only copied to the heap
   when a miss inserts it.

   Three regimes keep the table worth its cost:

   - 0 or 1 live ports (stalls make this the most common cycle shape):
     the selection has a closed form — nothing merges, nothing can be
     rejected — so it is answered inline without touching the table.
   - Pure-CSMT schemes read nothing but cluster-occupancy masks, so
     ports are keyed by mask: at most 2^clusters values per port, a key
     space small enough to cache every cycle density.
   - Schemes with SMT blocks discriminate by the full signature id.
     Dense cycles (3+ live ports) then key on a near-unique tuple —
     instruction shapes compound across independent threads — so only
     sparse cycles are memoized and dense ones are computed directly;
     caching the dense tail costs more in misses and GC-visible table
     growth than it saves. *)

module Memo = struct
  type stats = { hits : int; misses : int; flushes : int; size : int }

  module Key = struct
    type t = int array

    let equal a b =
      let n = Array.length a in
      n = Array.length b
      &&
      let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
      go 0

    (* FNV-1a over the key words, folded into OCaml's native int. *)
    let fnv_prime = 0x100000001B3

    let hash a =
      let h = ref 0x1545A257 in
      Array.iter (fun w -> h := (!h lxor w) * fnv_prime land max_int) a;
      !h land 0x3FFFFFFF
  end

  module Tbl = Hashtbl.Make (Key)

  type entry = {
    e_order : int list;  (* ports unioned into the packet, union order *)
    e_issued : int list;
    e_rejected : reject list;
  }

  type t = {
    check : Scheme_kind.t -> Packet.t -> Packet.t -> Conflict.failure option;
    scheme : Scheme.t;
    n : int;
    cap : int;
    mask_keyed : bool;  (* pure-CSMT scheme: ports keyed by cluster mask *)
    max_live : int;  (* densest cycle worth memoizing *)
    scratch : int array;  (* staged lookup key, reused every cycle *)
    tbl : entry Tbl.t;
    mutable hits : int;
    mutable misses : int;
    mutable flushes : int;
        (* whole-table flushes on reaching capacity; hit/miss tallies
           are cumulative across flushes by construction — only the
           entries are dropped, never the counters *)
  }

  let create ?(cap = 1 lsl 16) (machine : Vliw_isa.Machine.t) ~routing scheme =
    let n = Scheme.n_threads scheme in
    let mask_keyed = Scheme.block_count Scheme_kind.Smt scheme = 0 in
    {
      check = Conflict.check machine ~routing;
      scheme;
      n;
      cap;
      mask_keyed;
      max_live = (if mask_keyed then n else 2);
      (* rotation, then one word per port; a stalled port is -1 (masks
         and intern ids are >= 0). *)
      scratch = Array.make (1 + n) 0;
      tbl = Tbl.create 256;
      hits = 0;
      misses = 0;
      flushes = 0;
    }

  let replay avail = function
    | [] -> None
    | hw :: rest ->
      let first = Option.get avail.(hw) in
      Some
        (List.fold_left
           (fun acc hw -> Packet.union acc (Option.get avail.(hw)))
           first rest)

  (* [issue_only] callers never read the merged packet (the simulator's
     hot loop only needs who issued and who was rejected), so the scheme
     tree is evaluated with signature-only unions and hits skip packet
     reconstruction entirely. Full callers rebuild the packet by folding
     real unions over the recorded union order — the same construction
     either way, so both modes agree bit-for-bit on the packet when it
     is materialized. *)
  let empty = { packet = None; issued = []; rejected = [] }

  (* Replayed thread ids are positional: port i must carry hardware
     thread i wrapping a single instruction (as the simulator's
     candidate packets do), else a key collision across
     differently-threaded packets would replay the wrong ids. *)
  let rec positional avail n i =
    i >= n
    || (match avail.(i) with
       | None -> positional avail n (i + 1)
       | Some (p : Packet.t) ->
         p.threads = 1 lsl i && p.sid >= 0 && positional avail n (i + 1))

  let select_with ~issue_only t ~rotation avail =
    assert (Array.length avail >= t.n);
    assert (positional avail t.n 0);
    let rotation = ((rotation mod t.n) + t.n) mod t.n in
    let words = t.scratch in
    words.(0) <- rotation;
    let live = ref 0 and last = ref (-1) in
    for i = 0 to t.n - 1 do
      words.(i + 1) <-
        (match avail.(i) with
        | None -> -1
        | Some (p : Packet.t) ->
          incr live;
          last := i;
          if t.mask_keyed then p.mask else p.sid)
    done;
    if !live = 0 then empty
    else if !live = 1 then
      (* One candidate meets no other packet at any merge block: it
         issues alone, nothing can be rejected. *)
      { packet = avail.(!last); issued = [ !last ]; rejected = [] }
    else if !live > t.max_live then
      if issue_only then
        let sel =
          sel_of
            (select_core ~union:Packet.union_sig ~check:t.check t.scheme
               ~rotation avail)
        in
        { sel with packet = None }
      else sel_of (select_core ~check:t.check t.scheme ~rotation avail)
    else begin
      match Tbl.find t.tbl words with
      | e ->
        t.hits <- t.hits + 1;
        {
          packet = (if issue_only then None else replay avail e.e_order);
          issued = e.e_issued;
          rejected = e.e_rejected;
        }
      | exception Not_found ->
        t.misses <- t.misses + 1;
        let sel, obuf, olen =
          select_core ~union:Packet.union_sig ~check:t.check t.scheme ~rotation
            avail
        in
        let order = Array.to_list (Array.sub obuf 0 olen) in
        if Tbl.length t.tbl >= t.cap then begin
          Tbl.reset t.tbl;
          t.flushes <- t.flushes + 1
        end;
        Tbl.add t.tbl (Array.copy words)
          { e_order = order; e_issued = sel.issued; e_rejected = sel.rejected };
        if issue_only then { sel with packet = None }
        else { sel with packet = replay avail order }
    end

  let select t ?(rotation = 0) avail = select_with ~issue_only:false t ~rotation avail

  let select_issue t ?(rotation = 0) avail =
    select_with ~issue_only:true t ~rotation avail

  let stats t =
    {
      hits = t.hits;
      misses = t.misses;
      flushes = t.flushes;
      size = Tbl.length t.tbl;
    }
end

(* --- batched bit-parallel kernel --------------------------------------

   A compiled evaluator for one (machine, routing, scheme): the cycle's
   candidates are packed into flat int lanes (one word-level signature
   lane per cluster), and the scheme tree is evaluated with word-parallel
   bitwise/integer ops over those lanes. No per-thread closures, no
   per-node option allocation, no list construction: the traversal is
   top-level recursion over the immutable scheme tree, intermediate
   packets live in depth-indexed accumulator registers, and the outcome
   is three thread bitmasks plus the union-order buffer. [eval] therefore
   allocates nothing — the simulator's steady-state loop can run it every
   cycle and stay off the minor heap.

   The conflict decisions are the same integer/bitmask arithmetic as
   {!Conflict.check}, applied to the register lanes instead of packets;
   the traversal mirrors [eval]/[eval_children] exactly (same
   accumulate-then-check fold, same reject and union-order bookkeeping),
   so [select_batched] agrees bit-for-bit with [select] — property-tested
   against [select_reference] like the signature fast path. *)

module Batch = struct
  type t = {
    machine : Vliw_isa.Machine.t;
    routing : Conflict.routing_mode;
    scheme : Scheme.t;
    n : int;
    clusters : int;
    (* Lane maintenance is gated by what the scheme's checks read: a
       pure-CSMT scheme never looks past the cluster masks, flexible SMT
       reads packed counts, fixed-slot SMT reads pinned masks. *)
    need_counts : bool;
    need_pins : bool;
    (* Port lanes, indexed by hardware thread; [i * clusters + c] in the
       flattened per-cluster arrays. *)
    mutable live : int;  (* bitmask of ports holding a candidate *)
    p_threads : int array;
    p_mask : int array;
    p_counts : int array;
    p_pins : int array;
    (* Accumulator registers, one per tree depth: the merge node at
       depth [d] accumulates in register [d] while its children
       evaluate into register [d+1]. *)
    r_threads : int array;
    r_mask : int array;
    r_counts : int array;
    r_pins : int array;
    order : int array;  (* accepted leaves in union order *)
    mutable order_len : int;
    mutable out_issued : int;  (* outcome thread bitmasks *)
    mutable out_conflict : int;
    mutable out_capacity : int;
  }

  let create (machine : Vliw_isa.Machine.t) ~routing scheme =
    let n = Scheme.n_threads scheme in
    let clusters = machine.Vliw_isa.Machine.clusters in
    let smt_blocks = Scheme.block_count Scheme_kind.Smt scheme in
    let depths = Scheme.levels scheme + 1 in
    {
      machine;
      routing;
      scheme;
      n;
      clusters;
      need_counts = smt_blocks > 0 && routing = Conflict.Flexible;
      need_pins = smt_blocks > 0 && routing = Conflict.Fixed_slots;
      live = 0;
      p_threads = Array.make n 0;
      p_mask = Array.make n 0;
      p_counts = Array.make (n * clusters) 0;
      p_pins = Array.make (n * clusters) 0;
      r_threads = Array.make depths 0;
      r_mask = Array.make depths 0;
      r_counts = Array.make (depths * clusters) 0;
      r_pins = Array.make (depths * clusters) 0;
      order = Array.make n 0;
      order_len = 0;
      out_issued = 0;
      out_conflict = 0;
      out_capacity = 0;
    }

  let scheme t = t.scheme

  let clear t = t.live <- 0

  let clear_port t i = t.live <- t.live land lnot (1 lsl i)

  let set_port t i (sg : Vliw_isa.Instr.signature) =
    t.live <- t.live lor (1 lsl i);
    t.p_threads.(i) <- 1 lsl i;
    t.p_mask.(i) <- sg.sg_mask;
    if t.need_counts then
      Array.blit sg.sg_counts 0 t.p_counts (i * t.clusters) t.clusters;
    if t.need_pins then
      Array.blit sg.sg_pins 0 t.p_pins (i * t.clusters) t.clusters

  let set_port_packet t i (p : Packet.t) =
    t.live <- t.live lor (1 lsl i);
    t.p_threads.(i) <- p.threads;
    t.p_mask.(i) <- p.mask;
    if t.need_counts then
      Array.blit p.counts 0 t.p_counts (i * t.clusters) t.clusters;
    if t.need_pins then
      Array.blit p.pins 0 t.p_pins (i * t.clusters) t.clusters

  (* Conflict decisions as integer codes (0 compatible, 1 cluster
     conflict, 2 slot capacity) between registers [d] and [s] — the same
     arithmetic as {!Conflict.check}, minus the option allocation. *)
  let rec flexible_fits t a b c =
    c >= t.clusters
    || (Vliw_isa.Instr.packed_fits t.machine
          (t.r_counts.(a + c) + t.r_counts.(b + c))
       && flexible_fits t a b (c + 1))

  let rec fixed_code t a b shared c =
    if c >= t.clusters then 0
    else if shared land (1 lsl c) = 0 then fixed_code t a b shared (c + 1)
    else begin
      let pa = t.r_pins.(a + c) and pb = t.r_pins.(b + c) in
      if pa <> -1 && pb <> -1 then
        if pa land pb = 0 then fixed_code t a b shared (c + 1) else 1
      else 2
    end

  let check_code t kind d s =
    match ((kind : Scheme_kind.t), t.routing) with
    | Scheme_kind.Csmt, _ -> if t.r_mask.(d) land t.r_mask.(s) = 0 then 0 else 1
    | Smt, Conflict.Flexible ->
      if flexible_fits t (d * t.clusters) (s * t.clusters) 0 then 0 else 2
    | Smt, Conflict.Fixed_slots ->
      fixed_code t (d * t.clusters) (s * t.clusters)
        (t.r_mask.(d) land t.r_mask.(s))
        0

  let load_port t d i =
    t.r_threads.(d) <- t.p_threads.(i);
    t.r_mask.(d) <- t.p_mask.(i);
    if t.need_counts then
      Array.blit t.p_counts (i * t.clusters) t.r_counts (d * t.clusters)
        t.clusters;
    if t.need_pins then
      Array.blit t.p_pins (i * t.clusters) t.r_pins (d * t.clusters) t.clusters

  let copy_reg t d s =
    t.r_threads.(d) <- t.r_threads.(s);
    t.r_mask.(d) <- t.r_mask.(s);
    if t.need_counts then
      Array.blit t.r_counts (s * t.clusters) t.r_counts (d * t.clusters)
        t.clusters;
    if t.need_pins then
      Array.blit t.r_pins (s * t.clusters) t.r_pins (d * t.clusters) t.clusters

  let union_into t d s =
    t.r_threads.(d) <- t.r_threads.(d) lor t.r_threads.(s);
    t.r_mask.(d) <- t.r_mask.(d) lor t.r_mask.(s);
    if t.need_counts then begin
      let a = d * t.clusters and b = s * t.clusters in
      for c = 0 to t.clusters - 1 do
        t.r_counts.(a + c) <- t.r_counts.(a + c) + t.r_counts.(b + c)
      done
    end;
    if t.need_pins then begin
      let a = d * t.clusters and b = s * t.clusters in
      for c = 0 to t.clusters - 1 do
        let pa = t.r_pins.(a + c) and pb = t.r_pins.(b + c) in
        t.r_pins.(a + c) <- (if pa = -1 || pb = -1 then -1 else pa lor pb)
      done
    end

  (* The tree fold of [eval]/[eval_children] on register lanes: the node
     evaluates into register [d] and reports whether it produced a value.
     An accepted leaf appends its port to [order]; a rejected subtree
     truncates back to the mark and books its threads under the failure
     cause — identical bookkeeping, no allocation. *)
  let rec eval_node t d rotation node =
    match (node : Scheme.t) with
    | Scheme.Thread i ->
      let hw = (i + rotation) mod t.n in
      if t.live land (1 lsl hw) = 0 then false
      else begin
        load_port t d hw;
        t.order.(t.order_len) <- hw;
        t.order_len <- t.order_len + 1;
        true
      end
    | Scheme.Merge { kind; impl = _; inputs } ->
      eval_inputs t d rotation kind false inputs

  and eval_inputs t d rotation kind has_acc = function
    | [] -> has_acc
    | input :: rest ->
      let mark = t.order_len in
      let has_acc =
        if not (eval_node t (d + 1) rotation input) then has_acc
        else if not has_acc then begin
          copy_reg t d (d + 1);
          true
        end
        else begin
          (match check_code t kind d (d + 1) with
          | 0 -> union_into t d (d + 1)
          | code ->
            t.order_len <- mark;
            if code = 1 then
              t.out_conflict <- t.out_conflict lor t.r_threads.(d + 1)
            else t.out_capacity <- t.out_capacity lor t.r_threads.(d + 1));
          true
        end
      in
      eval_inputs t d rotation kind has_acc rest

  let eval t ~rotation =
    let rotation = ((rotation mod t.n) + t.n) mod t.n in
    t.order_len <- 0;
    t.out_conflict <- 0;
    t.out_capacity <- 0;
    t.out_issued <-
      (if eval_node t 0 rotation t.scheme then t.r_threads.(0) else 0)

  let issued t = t.out_issued

  let rejected_conflict t = t.out_conflict

  let rejected_capacity t = t.out_capacity

  let order t = t.order

  let order_len t = t.order_len
end

let select_batched m ?(routing = Conflict.Flexible) scheme ?(rotation = 0) avail
    =
  let b = Batch.create m ~routing scheme in
  Array.iteri
    (fun i p ->
      if i < b.Batch.n then
        match p with
        | None -> ()
        | Some p -> Batch.set_port_packet b i p)
    avail;
  Batch.eval b ~rotation;
  let packet =
    match Batch.order_len b with
    | 0 -> None
    | olen ->
      let first = Option.get avail.(b.Batch.order.(0)) in
      let acc = ref first in
      for k = 1 to olen - 1 do
        acc := Packet.union !acc (Option.get avail.(b.Batch.order.(k)))
      done;
      Some !acc
  in
  let issued = Packet.bits_to_list (Batch.issued b) in
  let rejected = ref [] in
  let conflict = Batch.rejected_conflict b
  and capacity = Batch.rejected_capacity b in
  for thread = b.Batch.n - 1 downto 0 do
    if conflict land (1 lsl thread) <> 0 then
      rejected := { thread; cause = Conflict.Cluster_conflict } :: !rejected
    else if capacity land (1 lsl thread) <> 0 then
      rejected := { thread; cause = Conflict.Slot_capacity } :: !rejected
  done;
  { packet; issued; rejected = !rejected }
