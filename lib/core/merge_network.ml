(* The merge network as a first-class runtime object.

   Historically the scheme was a construction-time parameter of the
   simulator core: the core built one [Engine.Memo] table for it and
   could never change its mind. This module bundles everything the
   per-cycle issue stage needs — the scheme tree, the routing mode, the
   priority-rotation rule and the interned-signature decision cache —
   behind a handle that can be reconfigured mid-simulation.

   Reconfiguration discipline:
   - One Memo table per scheme, pooled by scheme structure: switching
     back to a scheme it has already run re-installs its existing table,
     so cached decisions (and their hit/flush statistics) survive the
     excursion instead of being rebuilt from scratch.
   - Rotation state is derived, not stored: the caller passes the
     rotation each cycle (the core derives it from the cycle counter),
     so a swap re-seeds priority rotation deterministically — the
     round-robin simply continues from the switch cycle.
   - The handle is single-domain, like the Memo tables it owns: sweep
     workers must each create their own network. *)

type t = {
  machine : Vliw_isa.Machine.t;
  routing : Conflict.routing_mode;
  cap : int option;
  n : int;  (* thread ports; fixed for the lifetime of the network *)
  pool : (string, string * Engine.Memo.t * Engine.Batch.t) Hashtbl.t;
      (* scheme structure -> (display name, its pooled Memo table, its
         batched evaluator) *)
  mutable pool_order : string list;  (* insertion order, newest first *)
  mutable name : string;
  mutable scheme : Scheme.t;
  mutable memo : Engine.Memo.t;
  mutable batch : Engine.Batch.t;
  mutable reconfigurations : int;
}

(* Prefer the catalog name for display (profile tables, telemetry
   events); fall back to the structural rendering for anonymous
   schemes. *)
let display_name scheme =
  match
    List.find_opt
      (fun (e : Catalog.entry) -> Scheme.equal e.scheme scheme)
      Catalog.all
  with
  | Some e -> e.name
  | None -> Scheme.to_string scheme

let validate_scheme scheme =
  match Scheme.validate scheme with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Merge_network: invalid scheme: " ^ msg)

let memo_of t ~name scheme =
  let key = Scheme.to_string scheme in
  match Hashtbl.find_opt t.pool key with
  | Some (_, memo, batch) -> (memo, batch)
  | None ->
    let memo = Engine.Memo.create ?cap:t.cap t.machine ~routing:t.routing scheme in
    let batch = Engine.Batch.create t.machine ~routing:t.routing scheme in
    Hashtbl.add t.pool key (name, memo, batch);
    t.pool_order <- key :: t.pool_order;
    (memo, batch)

let create ?cap ?name machine ~routing scheme =
  validate_scheme scheme;
  let name = match name with Some n -> n | None -> display_name scheme in
  let t =
    {
      machine;
      routing;
      cap;
      n = Scheme.n_threads scheme;
      pool = Hashtbl.create 4;
      pool_order = [];
      name;
      scheme;
      memo = Engine.Memo.create ?cap machine ~routing scheme;
      batch = Engine.Batch.create machine ~routing scheme;
      reconfigurations = 0;
    }
  in
  Hashtbl.add t.pool (Scheme.to_string scheme) (name, t.memo, t.batch);
  t.pool_order <- [ Scheme.to_string scheme ];
  t

let scheme t = t.scheme

let scheme_name t = t.name

let n_threads t = t.n

let routing t = t.routing

let same_scheme t other = Scheme.equal t.scheme other

let reconfigure t ?name scheme =
  if not (same_scheme t scheme) then begin
    validate_scheme scheme;
    if Scheme.n_threads scheme <> t.n then
      invalid_arg
        (Printf.sprintf
           "Merge_network.reconfigure: %d-thread scheme on a %d-port network"
           (Scheme.n_threads scheme) t.n);
    let name = match name with Some n -> n | None -> display_name scheme in
    let memo, batch = memo_of t ~name scheme in
    t.memo <- memo;
    t.batch <- batch;
    t.name <- name;
    t.scheme <- scheme;
    t.reconfigurations <- t.reconfigurations + 1
  end

let reconfigurations t = t.reconfigurations

(* Priority rotation is a pure function of the cycle counter, so it is
   trivially re-seeded across a reconfiguration. *)
let rotation t ~rotate ~cycle = if rotate then cycle mod t.n else 0

let select t ~rotation avail = Engine.Memo.select t.memo ~rotation avail

let select_issue t ~rotation avail =
  Engine.Memo.select_issue t.memo ~rotation avail

let batch t = t.batch

let memo_stats t = Engine.Memo.stats t.memo

let pool_stats t =
  List.rev_map
    (fun key ->
      let name, memo, _ = Hashtbl.find t.pool key in
      (name, Engine.Memo.stats memo))
    t.pool_order
