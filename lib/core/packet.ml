type entry = { thread : int; op : Vliw_isa.Op.t }

type t = {
  clusters : entry list array;
  threads : int;
  mask : int;
  counts : int array;
  pins : int array;
  nops : int;
  sid : int;
}

let of_instr (m : Vliw_isa.Machine.t) ~thread (instr : Vliw_isa.Instr.t) =
  let sg = Vliw_isa.Instr.signature m instr in
  let clusters = Array.map (List.map (fun op -> { thread; op })) instr.ops in
  {
    clusters;
    threads = 1 lsl thread;
    mask = sg.sg_mask;
    counts = sg.sg_counts;
    pins = sg.sg_pins;
    nops = sg.sg_ops;
    sid = sg.sg_id;
  }

(* Pinned masks combine by union, except that inability to place ([-1])
   is absorbing: a merged packet is unroutable in fixed-slot mode as soon
   as any contributor is. *)
let union_pins a b = if a = -1 || b = -1 then -1 else a lor b

let union a b =
  assert (Array.length a.clusters = Array.length b.clusters);
  {
    clusters = Array.map2 (fun x y -> x @ y) a.clusters b.clusters;
    threads = a.threads lor b.threads;
    mask = a.mask lor b.mask;
    counts = Array.map2 ( + ) a.counts b.counts;
    pins = Array.map2 union_pins a.pins b.pins;
    nops = a.nops + b.nops;
    sid = -1;
  }

(* Signature-only union: combines everything the conflict checks and
   issue accounting read, but skips the per-cluster operation-list
   appends — the dominant allocation of a full union. The result's
   [clusters] is empty and must never be read; decision paths that only
   need issued/rejected threads use this. *)
let union_sig a b =
  {
    clusters = [||];
    threads = a.threads lor b.threads;
    mask = a.mask lor b.mask;
    counts = Array.map2 ( + ) a.counts b.counts;
    pins = Array.map2 union_pins a.pins b.pins;
    nops = a.nops + b.nops;
    sid = -1;
  }

let op_count t = t.nops

let bits_to_list bits =
  let rec go i acc =
    if 1 lsl i > bits then List.rev acc
    else go (i + 1) (if bits land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let thread_list t = bits_to_list t.threads

let cluster_threads t c =
  let bits =
    List.fold_left (fun acc e -> acc lor (1 lsl e.thread)) 0 t.clusters.(c)
  in
  bits_to_list bits

let ops_in t c = List.map (fun e -> e.op) t.clusters.(c)

let is_empty t = t.mask = 0

let pp m ppf t =
  let instr =
    Vliw_isa.Instr.of_cluster_ops ~addr:0
      (Array.map (List.map (fun e -> e.op)) t.clusters)
  in
  Format.fprintf ppf "threads=%s: %a"
    (String.concat "," (List.map string_of_int (thread_list t)))
    (Vliw_isa.Instr.pp m) instr
