type routing_mode = Flexible | Fixed_slots

(* Why a merge was denied, for telemetry attribution. Cluster-mask and
   pinned-slot collisions are conflicts (the packets want the same
   resource); an SMT union that overflows a cluster's slot constraints
   is a capacity failure (the resources simply run out). *)
type failure = Cluster_conflict | Slot_capacity

let csmt_compatible (a : Packet.t) (b : Packet.t) = a.mask land b.mask = 0

(* Operation-level check with full routing flexibility: the union must
   satisfy every cluster's slot constraints. Packed class-count words
   add without interaction between fields, so the combined demand of a
   cluster is one addition and the constraint test one unpacking. Every
   cluster is checked — including clusters only one packet occupies —
   matching the historical list-based check. *)
let smt_compatible (m : Vliw_isa.Machine.t) (a : Packet.t) (b : Packet.t) =
  let clusters = Array.length a.counts in
  let rec check c =
    c >= clusters
    || (Vliw_isa.Instr.packed_fits m (a.counts.(c) + b.counts.(c))
       && check (c + 1))
  in
  check 0

(* Fixed-slot mode: every operation is pinned to the slot it occupies in
   its own thread's instruction (no routing block). Two packets merge
   only if, on every shared cluster, those pinned slots do not collide.
   The pinned masks were computed once per instruction at compile time
   (Instr.signature) and combined through Packet.union, so the check is
   pure bitmask arithmetic — no re-routing per check. *)
let smt_check_fixed (_m : Vliw_isa.Machine.t) (a : Packet.t) (b : Packet.t) =
  let clusters = Array.length a.counts in
  let rec check c =
    if c >= clusters then None
    else if a.mask land b.mask land (1 lsl c) = 0 then check (c + 1)
    else begin
      let pa = a.pins.(c) and pb = b.pins.(c) in
      if pa <> -1 && pb <> -1 then
        if pa land pb = 0 then check (c + 1) else Some Cluster_conflict
      else Some Slot_capacity
    end
  in
  check 0

let smt_compatible_fixed m a b = smt_check_fixed m a b = None

let check m ?(routing = Flexible) kind a b =
  match ((kind : Scheme_kind.t), routing) with
  | Scheme_kind.Csmt, _ ->
    if csmt_compatible a b then None else Some Cluster_conflict
  | Smt, Flexible ->
    if smt_compatible m a b then None else Some Slot_capacity
  | Smt, Fixed_slots -> smt_check_fixed m a b

let compatible m ?(routing = Flexible) kind a b =
  check m ~routing kind a b = None

(* The pre-signature implementations, kept verbatim as the oracle the
   fast path is property-tested against (Engine.select_reference). These
   walk the tagged operation lists and, in fixed-slot mode, re-derive
   each thread's pinned slots through Routing.route — exactly the work
   the signature layer precomputes. *)
module Reference = struct
  let smt_compatible (m : Vliw_isa.Machine.t) (a : Packet.t) (b : Packet.t) =
    let clusters = Array.length a.clusters in
    let rec check c =
      if c >= clusters then true
      else begin
        let ops = Packet.ops_in a c @ Packet.ops_in b c in
        Vliw_isa.Instr.fits_cluster m ops && check (c + 1)
      end
    in
    check 0

  let thread_slot_mask (m : Vliw_isa.Machine.t) entries thread =
    let ops =
      List.filter_map
        (fun (e : Packet.entry) -> if e.thread = thread then Some e else None)
        entries
    in
    match
      Routing.route m
        {
          Packet.clusters = [| ops |];
          threads = 1 lsl thread;
          mask = (if ops = [] then 0 else 1);
          counts = [| 0 |];
          pins = [| 0 |];
          nops = List.length ops;
          sid = -1;
        }
    with
    | None -> None
    | Some routed ->
      let mask = ref 0 in
      Array.iteri
        (fun s slot -> if slot <> None then mask := !mask lor (1 lsl s))
        routed.(0);
      Some !mask

  let cluster_slot_mask m (p : Packet.t) c =
    List.fold_left
      (fun acc thread ->
        match acc with
        | None -> None
        | Some acc_mask ->
          (match thread_slot_mask m p.clusters.(c) thread with
          | None -> None
          | Some mask -> Some (acc_mask lor mask)))
      (Some 0) (Packet.cluster_threads p c)

  let smt_check_fixed (m : Vliw_isa.Machine.t) (a : Packet.t) (b : Packet.t) =
    let clusters = Array.length a.clusters in
    let rec check c =
      if c >= clusters then None
      else begin
        let shared = a.mask land b.mask land (1 lsl c) <> 0 in
        if not shared then check (c + 1)
        else
          match (cluster_slot_mask m a c, cluster_slot_mask m b c) with
          | Some ma, Some mb ->
            if ma land mb = 0 then check (c + 1) else Some Cluster_conflict
          | None, _ | _, None -> Some Slot_capacity
      end
    in
    check 0

  let check m ?(routing = Flexible) kind a b =
    match ((kind : Scheme_kind.t), routing) with
    | Scheme_kind.Csmt, _ ->
      if csmt_compatible a b then None else Some Cluster_conflict
    | Smt, Flexible ->
      if smt_compatible m a b then None else Some Slot_capacity
    | Smt, Fixed_slots -> smt_check_fixed m a b
end
