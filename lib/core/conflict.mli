(** Resource-conflict checks — the two merge granularities of the paper.

    CSMT checks at cluster level: two packets may merge only when they use
    disjoint clusters (§2.1). SMT checks at operation level: packets may
    share a cluster as long as the combined operations still satisfy the
    cluster's slot constraints (fixed slots for memory/multiply/branch,
    free slots for ALU ops).

    The [Fixed_slots] routing mode is an ablation: it removes the SMT
    routing block, pinning each operation to the slot it occupies in its
    own thread's instruction, so operation-level merging succeeds only
    when pinned slots happen not to collide. It quantifies how much of
    SMT's advantage the routing hardware buys.

    All checks run on the packets' precomputed signatures (cluster masks,
    packed class counts, pinned-slot masks) — pure integer arithmetic,
    no list traversal, no routing. The historical list-walking
    implementations live on in {!Reference} as the property-test
    oracle. *)

type routing_mode = Flexible | Fixed_slots

type failure =
  | Cluster_conflict
      (** The packets want the same resource: overlapping cluster masks
          (CSMT) or colliding pinned slots (fixed-slot SMT). *)
  | Slot_capacity
      (** The combined operations exceed a cluster's slot constraints
          (SMT). *)

val csmt_compatible : Packet.t -> Packet.t -> bool
(** Cluster-usage masks are disjoint. *)

val smt_compatible : Vliw_isa.Machine.t -> Packet.t -> Packet.t -> bool
(** The union satisfies every cluster's slot constraints (with full
    routing flexibility). *)

val smt_compatible_fixed : Vliw_isa.Machine.t -> Packet.t -> Packet.t -> bool
(** Operation-level check without a routing block. Strictly stronger
    than {!smt_compatible}. *)

val check :
  Vliw_isa.Machine.t ->
  ?routing:routing_mode ->
  Scheme_kind.t ->
  Packet.t ->
  Packet.t ->
  failure option
(** [None] when the packets may merge; otherwise why not. Dispatches on
    the merge kind; [routing] (default [Flexible]) selects the SMT check
    variant. *)

val compatible :
  Vliw_isa.Machine.t ->
  ?routing:routing_mode ->
  Scheme_kind.t ->
  Packet.t ->
  Packet.t ->
  bool
(** [check = None]. *)

(** The pre-signature list-walking implementations, kept as the oracle
    for fast≡reference property tests. [thread_slot_mask] re-routes one
    thread's operations per call — the cost the signature layer removes
    from the per-cycle path. *)
module Reference : sig
  val smt_compatible : Vliw_isa.Machine.t -> Packet.t -> Packet.t -> bool

  val thread_slot_mask :
    Vliw_isa.Machine.t -> Packet.entry list -> int -> int option
  (** Pinned slots of one thread's operations within a cluster, via a
      fresh {!Routing.route} pass; [None] when they cannot be placed. *)

  val smt_check_fixed :
    Vliw_isa.Machine.t -> Packet.t -> Packet.t -> failure option

  val check :
    Vliw_isa.Machine.t ->
    ?routing:routing_mode ->
    Scheme_kind.t ->
    Packet.t ->
    Packet.t ->
    failure option
end
