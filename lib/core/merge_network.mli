(** The merge network as a swappable, first-class runtime object.

    A handle bundles the pieces the per-cycle issue stage reads — the
    scheme tree, the routing mode, the priority-rotation rule and the
    interned-signature {!Engine.Memo} decision cache — and supports
    mid-simulation reconfiguration: {!reconfigure} swaps the scheme
    while pooling one Memo table per scheme (keyed by scheme structure),
    so revisiting a scheme reuses its cached decisions and statistics
    instead of rebuilding the table.

    Rotation state is derived from the cycle counter ({!rotation}), so a
    swap re-seeds priority rotation deterministically. Like the Memo
    tables it owns, a network is single-domain: create one per simulator
    core. *)

type t

val create :
  ?cap:int ->
  ?name:string ->
  Vliw_isa.Machine.t ->
  routing:Conflict.routing_mode ->
  Scheme.t ->
  t
(** [cap] bounds each pooled Memo table (see {!Engine.Memo.create}).
    [name] is the display name used in statistics and telemetry;
    defaults to the catalog name when the scheme matches a catalog
    entry, else {!Scheme.to_string}.
    @raise Invalid_argument on an invalid scheme. *)

val scheme : t -> Scheme.t

val scheme_name : t -> string
(** Display name of the scheme currently installed. *)

val n_threads : t -> int
(** Thread ports; fixed for the lifetime of the network. *)

val routing : t -> Conflict.routing_mode

val same_scheme : t -> Scheme.t -> bool
(** Whether the installed scheme is structurally equal to the given
    one. *)

val reconfigure : t -> ?name:string -> Scheme.t -> unit
(** Install a different scheme. A structurally equal scheme is a no-op;
    otherwise the scheme's pooled Memo table is (re)installed — created
    on first use, reused with its statistics intact on a revisit.
    @raise Invalid_argument if the scheme is invalid or its thread
    count differs from {!n_threads}. *)

val reconfigurations : t -> int
(** Number of effective (non-no-op) {!reconfigure} calls. *)

val rotation : t -> rotate:bool -> cycle:int -> int
(** The priority rotation for a cycle: [cycle mod n_threads] when
    rotation is enabled, [0] otherwise. Pure in the cycle counter, so
    reconfiguration re-seeds it deterministically. *)

val select : t -> rotation:int -> Packet.t option array -> Engine.selection
(** Memoized scheme evaluation ({!Engine.Memo.select}): the full
    selection including the merged packet. *)

val select_issue :
  t -> rotation:int -> Packet.t option array -> Engine.selection
(** Memoized scheme evaluation without packet reconstruction
    ({!Engine.Memo.select_issue}) — the simulator's observing per-cycle
    loop. *)

val batch : t -> Engine.Batch.t
(** The currently installed scheme's batched evaluator
    ({!Engine.Batch}), pooled per scheme like the Memo tables — the
    simulator's allocation-free steady-state loop. *)

val memo_stats : t -> Engine.Memo.stats
(** Statistics of the currently installed scheme's table. *)

val pool_stats : t -> (string * Engine.Memo.stats) list
(** Per-scheme statistics of every pooled table, in first-installation
    order: [(display name, stats)]. A never-reconfigured network has
    exactly one entry. *)
