(** Execution packets: thread-tagged merge candidates.

    A packet is either a single thread's VLIW instruction or the result of
    merging several; it remembers which thread contributed each operation
    so the routing stage can steer operations, and so tests can check the
    CSMT invariant (one thread per cluster). Packets are the atomic unit
    of merging: they combine in their entirety or not at all.

    Alongside the tagged operation lists, a packet carries the combined
    {e signature} of its contributors (see {!Vliw_isa.Instr.signature}):
    per-cluster packed class counts and fixed-slot pinned masks. The
    conflict checks run entirely on these integers; the operation lists
    exist for routing and display. *)

type entry = { thread : int; op : Vliw_isa.Op.t }

type t = {
  clusters : entry list array;  (** Per-cluster tagged operations. *)
  threads : int;  (** Bitmask of contributing hardware threads. *)
  mask : int;  (** Bitmask of occupied clusters. *)
  counts : int array;
      (** Per-cluster packed class counts; sums of the contributors'
          {!Vliw_isa.Instr.pack_counts} words. *)
  pins : int array;
      (** Per-cluster union of the contributors' fixed-slot pinned
          masks; [-1] when any contributor's operations cannot be
          placed. *)
  nops : int;  (** Total operation count. *)
  sid : int;
      (** Intern id of the wrapped instruction's signature
          ({!Vliw_isa.Instr.signature}[.sg_id]); [-1] for unions. Decision
          caches key single-instruction candidates on this one word. *)
}

val of_instr : Vliw_isa.Machine.t -> thread:int -> Vliw_isa.Instr.t -> t
(** Wrap one thread's instruction, adopting its precomputed signature. *)

val union : t -> t -> t
(** Structural union; callers must have established compatibility first.
    Signature fields combine pointwise (counts add, pinned masks union
    with [-1] absorbing). *)

val union_sig : t -> t -> t
(** Like {!union} for every field the conflict checks and issue
    accounting read, but the result's [clusters] is empty — the
    operation-list appends are skipped. For decision paths that never
    inspect the merged operations. *)

val op_count : t -> int
(** O(1). *)

val thread_list : t -> int list
(** Contributing threads, ascending. *)

val bits_to_list : int -> int list
(** Set bit indices of a thread bitmask, ascending — the decoding
    behind {!thread_list}, shared with the batched kernel's outcome
    masks. *)

val cluster_threads : t -> int -> int list
(** Distinct threads with operations on the given cluster, ascending. *)

val ops_in : t -> int -> Vliw_isa.Op.t list

val is_empty : t -> bool

val pp : Vliw_isa.Machine.t -> Format.formatter -> t -> unit
