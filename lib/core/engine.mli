(** The merge engine: per-cycle thread selection and packet construction.

    Each cycle, every non-stalled thread offers its next VLIW instruction;
    the engine evaluates the scheme tree bottom-up and returns the merged
    execution packet together with the set of threads it issues.

    Semantics (DESIGN.md §4): a serial merge node folds over its inputs,
    skipping any input whose packet conflicts with the accumulated packet
    — exactly the cascading logic of the serial implementations in the
    paper's reference [7]. A parallel CSMT node selects the same set as
    the equivalent serial cascade (the paper states the implementations
    are functionally equivalent; they differ only in hardware cost).
    Stalled threads (input [None]) are transparent to the fold.

    Fairness: [rotation] remaps scheme input port [i] to hardware thread
    [(i + rotation) mod n]; the simulator advances it round-robin so no
    thread permanently owns the highest-priority port. *)

type reject = { thread : int; cause : Conflict.failure }
(** A hardware thread that offered a packet and was denied issue at some
    merge block, with the resource reason. Threads the policy simply
    never selects (IMT/BMT) are not engine rejects — the simulator
    attributes those to priority. *)

type selection = {
  packet : Packet.t option;  (** Merged packet, [None] when nothing issues. *)
  issued : int list;  (** Hardware thread ids issued this cycle, ascending. *)
  rejected : reject list;
      (** Candidates denied by a conflict/capacity check, thread-sorted.
          Each thread appears at most once: a packet is dropped at the
          first block that refuses it. *)
}

val select :
  Vliw_isa.Machine.t ->
  ?routing:Conflict.routing_mode ->
  Scheme.t ->
  ?rotation:int ->
  Packet.t option array ->
  selection
(** [select m scheme ~rotation avail] with [avail] indexed by hardware
    thread id; [avail] must have at least {!Scheme.n_threads}[ scheme]
    entries. [routing] (default [Flexible]) selects the SMT conflict
    check variant. *)

val select_instrs :
  Vliw_isa.Machine.t ->
  ?routing:Conflict.routing_mode ->
  Scheme.t ->
  ?rotation:int ->
  Vliw_isa.Instr.t option array ->
  selection
(** Convenience wrapper turning instructions into packets first. *)
