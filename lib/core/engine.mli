(** The merge engine: per-cycle thread selection and packet construction.

    Each cycle, every non-stalled thread offers its next VLIW instruction;
    the engine evaluates the scheme tree bottom-up and returns the merged
    execution packet together with the set of threads it issues.

    Semantics (DESIGN.md §4): a serial merge node folds over its inputs,
    skipping any input whose packet conflicts with the accumulated packet
    — exactly the cascading logic of the serial implementations in the
    paper's reference [7]. A parallel CSMT node selects the same set as
    the equivalent serial cascade (the paper states the implementations
    are functionally equivalent; they differ only in hardware cost).
    Stalled threads (input [None]) are transparent to the fold.

    Fairness: [rotation] remaps scheme input port [i] to hardware thread
    [(i + rotation) mod n]; the simulator advances it round-robin so no
    thread permanently owns the highest-priority port. *)

type reject = { thread : int; cause : Conflict.failure }
(** A hardware thread that offered a packet and was denied issue at some
    merge block, with the resource reason. Threads the policy simply
    never selects (IMT/BMT) are not engine rejects — the simulator
    attributes those to priority. *)

type selection = {
  packet : Packet.t option;  (** Merged packet, [None] when nothing issues. *)
  issued : int list;  (** Hardware thread ids issued this cycle, ascending. *)
  rejected : reject list;
      (** Candidates denied by a conflict/capacity check, thread-sorted.
          Each thread appears at most once: a packet is dropped at the
          first block that refuses it. *)
}

val select :
  Vliw_isa.Machine.t ->
  ?routing:Conflict.routing_mode ->
  Scheme.t ->
  ?rotation:int ->
  Packet.t option array ->
  selection
(** [select m scheme ~rotation avail] with [avail] indexed by hardware
    thread id; [avail] must have at least {!Scheme.n_threads}[ scheme]
    entries. [routing] (default [Flexible]) selects the SMT conflict
    check variant. *)

val select_reference :
  Vliw_isa.Machine.t ->
  ?routing:Conflict.routing_mode ->
  Scheme.t ->
  ?rotation:int ->
  Packet.t option array ->
  selection
(** Same contract as {!select}, evaluated with the pre-signature
    list-walking conflict checks ({!Conflict.Reference}). The oracle the
    fast path is property-tested against; not for the hot path. *)

val select_instrs :
  Vliw_isa.Machine.t ->
  ?routing:Conflict.routing_mode ->
  Scheme.t ->
  ?rotation:int ->
  Vliw_isa.Instr.t option array ->
  selection
(** Convenience wrapper turning instructions into packets first. *)

(** Batched bit-parallel scheme evaluation.

    A compiled evaluator for one (machine, routing, scheme): candidates
    are packed into flat int lanes (one word-level signature lane per
    cluster) and the scheme tree is evaluated with word-parallel bitwise
    ops over them — no per-thread closures, no per-node option
    allocation. {!Batch.eval} allocates nothing, so the simulator's
    steady-state loop runs it every cycle and stays off the minor heap.
    Decisions agree bit-for-bit with {!select} (property-tested against
    {!select_reference}). Single-domain, like {!Memo}. *)
module Batch : sig
  type t

  val create :
    Vliw_isa.Machine.t -> routing:Conflict.routing_mode -> Scheme.t -> t

  val scheme : t -> Scheme.t

  val clear : t -> unit
  (** Mark every port empty. *)

  val clear_port : t -> int -> unit
  (** Mark one port empty (stalled or vacant context). *)

  val set_port : t -> int -> Vliw_isa.Instr.signature -> unit
  (** Load port [i] with hardware thread [i]'s candidate, straight from
      its interned signature — the simulator's positional fast path; no
      packet is built. *)

  val set_port_packet : t -> int -> Packet.t -> unit
  (** Load port [i] from a packet (which may carry any thread set) —
      the general/oracle entry point. *)

  val eval : t -> rotation:int -> unit
  (** Evaluate the scheme over the loaded ports. Allocation-free; the
      outcome is read back through the accessors below and stays valid
      until the next [eval]. *)

  val issued : t -> int
  (** Thread bitmask issued by the last {!eval}. *)

  val rejected_conflict : t -> int
  (** Threads denied by a cluster conflict, as a bitmask. *)

  val rejected_capacity : t -> int
  (** Threads denied by slot capacity, as a bitmask. *)

  val order : t -> int array
  (** Union-order buffer: ports accepted by the last {!eval}, in union
      order; only the first {!order_len} entries are meaningful. Shared
      scratch — do not mutate. *)

  val order_len : t -> int
end

val select_batched :
  Vliw_isa.Machine.t ->
  ?routing:Conflict.routing_mode ->
  Scheme.t ->
  ?rotation:int ->
  Packet.t option array ->
  selection
(** Same contract as {!select}, evaluated through a throwaway {!Batch}
    (ports loaded with {!Batch.set_port_packet}, packet rebuilt by
    folding {!Packet.union} over the recorded union order). The oracle
    surface of the batched kernel; the simulator keeps a persistent
    {!Batch} per scheme instead (see {!Merge_network}). *)

(** Bounded memo table over selection outcomes.

    A scheme's selection is a pure function of (rotation, per-port
    signature); running mixes repeat a small set of instruction shapes,
    so the same key recurs across cycles. On a hit the recorded outcome
    is replayed — the packet rebuilt bit-identically by folding
    {!Packet.union} over the live ports in the recorded union order —
    without evaluating the scheme tree. The table is flushed whole when
    it reaches its capacity bound. *)
module Memo : sig
  type t

  type stats = {
    hits : int;
    misses : int;
    flushes : int;
        (** Whole-table flushes on reaching capacity. Hit/miss tallies
            are cumulative across flushes: a flush drops the cached
            entries, never the counters. *)
    size : int;  (** Entries currently cached. *)
  }

  val create :
    ?cap:int ->
    Vliw_isa.Machine.t ->
    routing:Conflict.routing_mode ->
    Scheme.t ->
    t
  (** One table per (machine, routing, scheme) — create one per core so
      sweep worker domains never share it. [cap] (default [65536]) bounds
      the entry count. *)

  val select : t -> ?rotation:int -> Packet.t option array -> selection
  (** Memoizing {!Engine.select}. Port [i] must be [None] or a packet of
      hardware thread [i] exactly (the simulator's candidate packets),
      since replayed thread ids are positional. *)

  val select_issue : t -> ?rotation:int -> Packet.t option array -> selection
  (** Like {!select} but the returned [packet] is [None] whenever more
      than one candidate is live: the scheme tree is evaluated with
      signature-only unions and hits skip packet reconstruction. For
      callers that only need [issued]/[rejected] — the simulator's
      per-cycle loop. [issued] and [rejected] are identical to
      {!select}'s. *)

  val stats : t -> stats
end
