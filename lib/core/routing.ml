type slot = Packet.entry option

type routed = slot array array

(* Fixed-slot classes claim their dedicated slots first (memory, multiply,
   branch have disjoint slot ranges); ALU operations then fill any free
   slot. Because ALU capability is universal, this greedy order is optimal:
   it succeeds whenever Instr.fits_cluster holds. *)
let route_cluster (m : Vliw_isa.Machine.t) entries =
  let slots = Array.make m.issue_width None in
  let claim pred e =
    let rec find s =
      if s >= m.issue_width then false
      else if slots.(s) = None && pred s then begin
        slots.(s) <- Some e;
        true
      end
      else find (s + 1)
    in
    find 0
  in
  let fixed, alus =
    List.partition
      (fun (e : Packet.entry) ->
        match e.op.klass with
        | Vliw_isa.Op.Alu | Vliw_isa.Op.Copy -> false
        | _ -> true)
      entries
  in
  let ok_fixed =
    List.for_all
      (fun (e : Packet.entry) ->
        claim (fun s -> Vliw_isa.Machine.slot_allows m ~slot:s e.op.klass) e)
      fixed
  in
  let ok_alu = List.for_all (fun e -> claim (fun _ -> true) e) alus in
  if ok_fixed && ok_alu then Some slots else None

(* Invocation counter, so tests can pin down how often the simulator
   actually routes: at most once per issued packet, never inside the
   per-cycle conflict checks. *)
let route_calls = Atomic.make 0

let calls () = Atomic.get route_calls

let reset_calls () = Atomic.set route_calls 0

let route m (p : Packet.t) =
  Atomic.incr route_calls;
  let n = Array.length p.clusters in
  let out = Array.make n [||] in
  let rec go c =
    if c >= n then Some out
    else
      match route_cluster m p.clusters.(c) with
      | Some slots ->
        out.(c) <- slots;
        go (c + 1)
      | None -> None
  in
  go 0

let occupancy routed =
  Array.fold_left
    (fun acc slots ->
      Array.fold_left (fun acc s -> if s = None then acc else acc + 1) acc slots)
    0 routed

let pp _m ppf routed =
  Array.iteri
    (fun c slots ->
      if c > 0 then Format.fprintf ppf " |";
      Array.iter
        (fun slot ->
          match slot with
          | None -> Format.fprintf ppf " %7s" "-"
          | Some (e : Packet.entry) ->
            Format.fprintf ppf " %7s"
              (Printf.sprintf "%s[%d]" (Vliw_isa.Op.class_name e.op.klass) e.thread))
        slots)
    routed
