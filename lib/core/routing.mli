(** Operation routing — the routing block / multiplexers of Figures 2–3.

    After the thread merge control selects which packets to merge, the
    routing stage steers each operation to a concrete issue slot. For
    pure CSMT merges this degenerates to the per-cluster N-to-1 mux (each
    cluster carries one thread's operations, already slot-feasible); for
    SMT merges operations from several threads share a cluster and must be
    re-slotted around the fixed memory/multiply/branch slots. *)

type slot = Packet.entry option

type routed = slot array array
(** [clusters x issue_width]; [None] is a NOP slot. *)

val route : Vliw_isa.Machine.t -> Packet.t -> routed option
(** Slot assignment for a packet, or [None] if some cluster cannot satisfy
    its constraints. Merge engines only route packets whose compatibility
    was established, for which routing always succeeds (tested as an
    invariant). *)

val occupancy : routed -> int
(** Number of filled slots. *)

val calls : unit -> int
(** Number of {!route} invocations process-wide since the last
    {!reset_calls}. Lets tests assert the merge fast path never routes
    inside a conflict check. *)

val reset_calls : unit -> unit

val pp : Vliw_isa.Machine.t -> Format.formatter -> routed -> unit
(** Figure-1-style rendering with thread tags, e.g. "ld[0]". *)
