(** Cost of a whole merge network, composed over the scheme tree.

    Delay composition follows §4.2: merge-select logic chains along the
    tree (a serial node folds its inputs, widening the packet at each
    stage), while SMT routing-signal generation overlaps with downstream
    select logic — the final delay is the later of the last select and
    the last routing-signal completion. Transistors simply add up. *)

type t = {
  select_finish : float;  (** When the final thread selection settles. *)
  routing_finish : float;  (** When the last routing signals settle. *)
  transistors : float;
  width : int;  (** Threads entering downstream logic. *)
}

val eval : ?params:Block_cost.params -> Vliw_merge.Scheme.t -> t

val delay : ?params:Block_cost.params -> Vliw_merge.Scheme.t -> float
(** [max select_finish routing_finish]. *)

val transistors : ?params:Block_cost.params -> Vliw_merge.Scheme.t -> float

val smt_cascade_cost : ?params:Block_cost.params -> int -> float * float
(** [(delay, transistors)] of an n-thread serial SMT merge control
    (Figure 5's "SMT" series). *)

val csmt_serial_cost : ?params:Block_cost.params -> int -> float * float
(** Figure 5's "CSMT SL" series. *)

val csmt_parallel_cost : ?params:Block_cost.params -> int -> float * float
(** Figure 5's "CSMT PL" series. *)

val pareto_front : (string * float * float) list -> string list
(** [pareto_front points] with [(name, cost, value)]: names of points not
    dominated by any other (lower cost and higher value). Used by the
    design-space exploration example. *)

val total_transistors :
  ?params:Block_cost.params ->
  ?machine:Vliw_isa.Machine.t ->
  Vliw_merge.Scheme.t ->
  float
(** Merge control plus the (scheme-independent) routing block / muxes —
    the full merging hardware of Figures 2-3. *)

val comparable : Vliw_merge.Scheme.t -> Vliw_merge.Scheme.t -> bool
(** Whether two schemes belong to the same {!Vliw_merge.Catalog}
    performance/cost group (§5.2) — the hardware-cost envelope within
    which a runtime controller may legitimately reconfigure. Equal
    schemes are always comparable. *)

val switch_penalty : ?base:int -> Vliw_merge.Scheme.t -> Vliw_merge.Scheme.t -> int
(** Cycles a mid-run merge-network reconfiguration stalls issue:
    [base] (default 1, the control-register update) plus one cycle per
    cascade level of the deeper of the two networks (drain + re-latch).
    Zero iff the schemes are structurally equal. *)
