module Scheme = Vliw_merge.Scheme
module Kind = Vliw_merge.Scheme_kind

type t = {
  select_finish : float;
  routing_finish : float;
  transistors : float;
  width : int;
}

let leaf = { select_finish = 0.0; routing_finish = 0.0; transistors = 0.0; width = 1 }

let rec eval_node p = function
  | Scheme.Thread _ -> leaf
  | Scheme.Merge { kind; impl = Scheme.Parallel; inputs } ->
    (* Parallel blocks only exist for CSMT (Scheme.validate enforces it). *)
    assert (kind = Kind.Csmt);
    let children = List.map (eval_node p) inputs in
    let k = List.length inputs in
    let width = List.fold_left (fun acc c -> acc + c.width) 0 children in
    let sel_in = List.fold_left (fun acc c -> max acc c.select_finish) 0.0 children in
    let route_in = List.fold_left (fun acc c -> max acc c.routing_finish) 0.0 children in
    let trans_in = List.fold_left (fun acc c -> acc +. c.transistors) 0.0 children in
    {
      select_finish = sel_in +. Block_cost.csmt_parallel_delay p ~inputs:k;
      routing_finish = route_in;
      transistors =
        trans_in +. Block_cost.csmt_parallel_transistors p ~inputs:k ~width;
      width;
    }
  | Scheme.Merge { kind; impl = Scheme.Serial; inputs } ->
    (* A serial node is a cascade: each stage merges the accumulated
       packet with the next input, so stage cost grows with the
       accumulated width. *)
    (match List.map (eval_node p) inputs with
    | [] -> assert false
    | first :: rest ->
      let stage acc child =
        let width = acc.width + child.width in
        let start = max acc.select_finish child.select_finish in
        match kind with
        | Kind.Csmt ->
          {
            select_finish = start +. Block_cost.csmt_select_delay p ~width;
            routing_finish = max acc.routing_finish child.routing_finish;
            transistors =
              acc.transistors +. child.transistors
              +. Block_cost.csmt_transistors p ~width;
            width;
          }
        | Kind.Smt ->
          let select_finish = start +. Block_cost.smt_select_delay p ~width in
          {
            select_finish;
            routing_finish =
              max
                (max acc.routing_finish child.routing_finish)
                (select_finish +. Block_cost.smt_routing_delay p ~width);
            transistors =
              acc.transistors +. child.transistors
              +. Block_cost.smt_transistors p ~width;
            width;
          }
      in
      List.fold_left stage first rest)

let eval ?(params = Block_cost.default) scheme = eval_node params scheme

let delay ?params scheme =
  let c = eval ?params scheme in
  max c.select_finish c.routing_finish

let transistors ?params scheme = (eval ?params scheme).transistors

let of_scheme ?params scheme =
  let c = eval ?params scheme in
  (max c.select_finish c.routing_finish, c.transistors)

let smt_cascade_cost ?params n = of_scheme ?params (Scheme.smt_cascade n)

let csmt_serial_cost ?params n = of_scheme ?params (Scheme.csmt_cascade n)

let csmt_parallel_cost ?params n =
  if n = 2 then of_scheme ?params (Scheme.csmt_cascade 2)
  else of_scheme ?params (Scheme.csmt_par n)

let pareto_front points =
  let dominated (name, cost, value) =
    List.exists
      (fun (name', cost', value') ->
        name' <> name
        && cost' <= cost && value' >= value
        && (cost' < cost || value' > value))
      points
  in
  List.filter_map
    (fun p -> if dominated p then None else Some (let name, _, _ = p in name))
    points

let total_transistors ?(params = Block_cost.default)
    ?(machine = Vliw_isa.Machine.default) scheme =
  transistors ~params scheme
  +. Block_cost.routing_block_transistors
       ~threads:(Vliw_merge.Scheme.n_threads scheme)
       ~clusters:machine.clusters ~issue_width:machine.issue_width

(* --- runtime reconfiguration ------------------------------------------ *)

let comparable a b =
  a == b || Scheme.equal a b
  || List.exists
       (fun (_, members) ->
         let has s =
           List.exists
             (fun name ->
               Scheme.equal (Vliw_merge.Catalog.find_exn name).scheme s)
             members
         in
         has a && has b)
       Vliw_merge.Catalog.perf_groups

let switch_penalty ?(base = 1) a b =
  if Scheme.equal a b then 0
  else
    (* Draining the select pipeline and re-latching the merge-control
       configuration costs one cycle per cascade level of the deeper of
       the two networks, plus a fixed control-update cost. *)
    base + max (Scheme.levels a) (Scheme.levels b)
