module Rng = Vliw_util.Rng

(* Two-region locality model: a small hot region (stack, hot arrays) that
   a 64 KB cache retains, walked with a 4-byte stride, and a cold region
   of [working_set_bytes] addressed uniformly at random. [seq_frac] is
   the probability of a hot access, so the single-thread miss rate is
   approximately (1 - seq_frac) * (1 - cache/working_set); co-scheduled
   threads additionally evict each other's hot regions. *)

type t = {
  rng : Rng.t;
  hot_bytes : int;
  cold_bytes : int;
  seq_frac : float;
  base : int;
  mutable seq_ptr : int;
}

let hot_region_cap = 16 * 1024

let create ~seed ~working_set_bytes ~seq_frac ~region_base =
  let ws = max 256 working_set_bytes in
  {
    rng = Rng.create seed;
    hot_bytes = min hot_region_cap ws;
    cold_bytes = ws;
    seq_frac;
    base = region_base;
    seq_ptr = 0;
  }

let next t =
  if Rng.bernoulli t.rng t.seq_frac then begin
    (* seq_ptr stays below hot_bytes, so the wrap is one compare rather
       than a division. *)
    let p = t.seq_ptr + 4 in
    t.seq_ptr <- (if p >= t.hot_bytes then p - t.hot_bytes else p);
    t.base + t.seq_ptr
  end
  else begin
    let off = Rng.int t.rng (t.cold_bytes / 4) * 4 in
    t.base + off
  end

let region_base t = t.base
