type t = {
  sets : int;
  ways : int;
  line_shift : int;
  set_bits : int;  (* log2 sets when sets is a power of two, else -1 *)
  tags : int array;  (* sets * ways, -1 = invalid *)
  stamps : int array;  (* LRU timestamps, parallel to tags *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Vliw_isa.Machine.cache_geom) =
  if not (is_pow2 g.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let sets = g.size_bytes / (g.line_bytes * g.ways) in
  if sets <= 0 then invalid_arg "Cache.create: geometry yields no sets";
  {
    sets;
    ways = g.ways;
    line_shift = log2 g.line_bytes;
    set_bits = (if is_pow2 sets then log2 sets else -1);
    tags = Array.make (sets * g.ways) (-1);
    stamps = Array.make (sets * g.ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let locate t addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.sets in
  let tag = line / t.sets in
  (set * t.ways, tag)

(* Index of the way holding [tag], or -1. Top-level recursion with an
   int sentinel keeps the per-access lookup allocation-free (a nested
   [let rec] would build a closure per call). *)
let rec find_way tags tag limit idx =
  if idx >= limit then -1
  else if tags.(idx) = tag then idx
  else find_way tags tag limit (idx + 1)

let find t base tag = find_way t.tags tag (base + t.ways) base

let probe t addr =
  let base, tag = locate t addr in
  find t base tag >= 0

let access t addr =
  (* [locate] open-coded: the tuple return would allocate per access,
     and for power-of-two set counts (the usual geometry) the set/tag
     split is shift-and-mask instead of two integer divisions. *)
  let line = addr lsr t.line_shift in
  let pow2 = t.set_bits >= 0 in
  let set = if pow2 then line land (t.sets - 1) else line mod t.sets in
  let tag = if pow2 then line lsr t.set_bits else line / t.sets in
  let base = set * t.ways in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let idx = find t base tag in
  if idx >= 0 then begin
    t.stamps.(idx) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict the least recently used way (empty ways have stamp 0). *)
    let victim = ref base in
    for w = 1 to t.ways - 1 do
      if t.stamps.(base + w) < t.stamps.(!victim) then victim := base + w
    done;
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock;
    false
  end

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let accesses t = t.accesses

let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let n_sets t = t.sets

let pp_stats ppf t =
  Format.fprintf ppf "%d accesses, %d misses (%.2f%%)" t.accesses t.misses
    (100.0 *. miss_rate t)
