(* The daemon: one select-driven event loop, no helper threads.

   Shape of a turn:
   1. select over the listeners and every connected client (zero
      timeout while cold cells are queued — the loop must not sleep on
      idle sockets while there is work to run);
   2. accept / read: bytes feed each client's NDJSON reader, completed
      lines become requests, framing errors become error replies
      (connection kept — rejection is per-line);
   3. if the queue is non-empty, plan ONE batch (Scheduler.plan over a
      snapshot of the queue) and run it on the Domain pool.

   Batches are the responsiveness unit: a batch holds at most [jobs]
   cells, so a higher-priority submission arriving mid-sweep preempts
   at the next batch boundary, and new clients wait at most one batch
   for their accept/cache-hit replies. Cache hits never enter the
   queue at all — they are answered synchronously at submit time.

   Socket writes happen only in the loop's own domain (results are
   processed after the pool barrier returns), so no send is ever
   concurrent with another and replies of one client stay ordered. A
   client that dies mid-job orphans the job: it keeps running (the
   results still feed the cache and the ledger) with its sends
   dropped. *)

module J = Vliw_util.Json
module Ndjson = Vliw_util.Ndjson
module Log = Vliw_util.Log
module E = Vliw_experiments
module Ledger = Vliw_telemetry.Ledger
module Counters = Vliw_telemetry.Counters
module Span = Vliw_telemetry.Span

type config = {
  socket_path : string option;
  tcp_port : int option;
  runs_dir : string;
  jobs : int;
  no_ledger : bool;
  metrics_out : string option;
  max_line_bytes : int;
  max_inflight : int;
  max_requests : int;
  max_jobs : int option;
  handle_signals : bool;
  log : Log.t;
  tracer : Span.collector option;
  trace_out : string option;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    runs_dir = Ledger.default_dir;
    jobs = 1;
    no_ledger = false;
    metrics_out = None;
    max_line_bytes = 1 lsl 20;
    max_inflight = 4;
    max_requests = 10_000;
    max_jobs = None;
    handle_signals = false;
    log = Log.null;
    tracer = None;
    trace_out = None;
  }

(* --- service counters -------------------------------------------------- *)

(* Process-global so [metrics_exposition] can be scraped without a
   handle on the running loop; [run] resets them on entry (one daemon
   per process is the deployment shape, and sequential test servers
   want fresh numbers). *)
type stats = {
  mutable requests : int;
  mutable rejected : int;
  mutable submits : int;
  mutable jobs_completed : int;
  mutable cells_cached : int;
  mutable cells_simulated : int;
  mutable cells_degraded : int;
  mutable cache_preloaded : int;
  mutable clients_accepted : int;
  (* gauges, refreshed by the loop *)
  mutable queue_depth : int;
  mutable clients_now : int;
  mutable cache_cells : int;
}

let stats =
  {
    requests = 0;
    rejected = 0;
    submits = 0;
    jobs_completed = 0;
    cells_cached = 0;
    cells_simulated = 0;
    cells_degraded = 0;
    cache_preloaded = 0;
    clients_accepted = 0;
    queue_depth = 0;
    clients_now = 0;
    cache_cells = 0;
  }

(* Span latencies observed into per-kind histograms; process-global for
   the same scrape-without-a-handle reason as [stats]. *)
let span_registry = ref (Counters.create ())

let reset_stats () =
  stats.requests <- 0;
  stats.rejected <- 0;
  stats.submits <- 0;
  stats.jobs_completed <- 0;
  stats.cells_cached <- 0;
  stats.cells_simulated <- 0;
  stats.cells_degraded <- 0;
  stats.cache_preloaded <- 0;
  stats.clients_accepted <- 0;
  stats.queue_depth <- 0;
  stats.clients_now <- 0;
  stats.cache_cells <- 0;
  span_registry := Counters.create ()

let counters_list () =
  [
    ("service.cache.preloaded", stats.cache_preloaded);
    ("service.cells.cached", stats.cells_cached);
    ("service.cells.degraded", stats.cells_degraded);
    ("service.cells.simulated", stats.cells_simulated);
    ("service.clients.accepted", stats.clients_accepted);
    ("service.jobs.completed", stats.jobs_completed);
    ("service.requests", stats.requests);
    ("service.requests.rejected", stats.rejected);
    ("service.submits", stats.submits);
  ]

let gauges_list () =
  [
    ("service.cache.cells", float_of_int stats.cache_cells);
    ("service.clients", float_of_int stats.clients_now);
    ("service.queue.depth", float_of_int stats.queue_depth);
  ]

let metrics_exposition () =
  Vliw_telemetry.Openmetrics.render
    ~labels:[ ("component", "service") ]
    ~snapshot:
      {
        Counters.counters = counters_list ();
        histograms = (Counters.snapshot !span_registry).Counters.histograms;
      }
    ~gauges:(gauges_list ()) ()

(* --- jobs -------------------------------------------------------------- *)

type slot_result = {
  r_ipc : float;  (* nan for a degraded cell *)
  r_cached : bool;
  r_elapsed : float;
  r_worker : int;
  r_error : string option;
}

type job = {
  j_id : string;
  j_tag : string;
  j_client : int;  (* client id; sends are dropped once it is gone *)
  j_priority : int;
  j_arrival : int;
  j_scale : E.Common.scale;
  j_seed : int64;
  j_schemes : string list;
  j_mixes : string list;
  j_slots : (string * string) array;  (* mix-major (mix, scheme) *)
  j_results : slot_result option array;
  mutable j_pending : int list;  (* undispatched cold slot indices *)
  mutable j_remaining : int;
  mutable j_cached : int;
  mutable j_simulated : int;
  mutable j_degraded : int;
  j_t0 : float;
  (* tracing: (trace id, client parent span, client asked) when the job
     is traced — either the request carried ids or server tracing is on.
     Spans only ride the "done" reply when the client asked. *)
  j_trace : (int64 * int64 option * bool) option;
  j_root : int64;  (* preallocated submit-span id; children hang here *)
  j_t0c : float;  (* tracer-clock sibling of [j_t0] *)
  mutable j_sched : bool;  (* queue_wait + schedule recorded already *)
  mutable j_spans : Span.t list;  (* this job's spans, newest first *)
}

type client = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_reader : Ndjson.reader;
  mutable c_inflight : int;
  mutable c_requests : int;
  mutable c_closed : bool;
}

let with_fields extra = function
  | J.Obj fields -> J.Obj (extra @ fields)
  | other -> other

(* --- the loop ---------------------------------------------------------- *)

let run cfg =
  if cfg.socket_path = None && cfg.tcp_port = None then
    invalid_arg "Server.run: no listener configured (socket or tcp)";
  reset_stats ();
  let effective_jobs =
    if cfg.jobs <= 0 then Vliw_util.Pool.auto_jobs () else cfg.jobs
  in
  let cache = Cache.create () in
  stats.cache_preloaded <- Cache.preload cache ~dir:cfg.runs_dir;
  stats.cache_cells <- Cache.size cache;
  Log.info cfg.log "cache preloaded"
    [
      ("cells", Log.I stats.cache_preloaded);
      ("ledger", Log.S (Ledger.ledger_path ~dir:cfg.runs_dir));
    ];
  (* The collector always exists (per-request tracing works even on an
     untraced daemon); it only accumulates spans for traced jobs, so an
     untraced deployment records nothing. *)
  let tracer =
    match cfg.tracer with
    | Some c -> c
    | None -> Span.collector ~seed:0x5e21e5713ea11L ()
  in
  let server_traced = cfg.tracer <> None || cfg.trace_out <> None in
  let job_span job ?parent ~kind ~name ~lane ~start_s ~dur_s () =
    match job.j_trace with
    | None -> ()
    | Some (trace, _, _) ->
      let sp =
        Span.record tracer ~trace ?parent ~kind ~name ~lane ~start_s ~dur_s ()
      in
      job.j_spans <- sp :: job.j_spans
  in
  (* Rows compiled once and shared across jobs; flushed wholesale when
     over budget (the Memo idiom — bounded without an eviction order). *)
  let prepared : (string * int64 * string, E.Sweep.prepared_row) Hashtbl.t =
    Hashtbl.create 64
  in
  let prepared_row ~scale ~seed mix =
    let key = (E.Common.scale_name scale, seed, mix) in
    match Hashtbl.find_opt prepared key with
    | Some pr -> pr
    | None ->
      if Hashtbl.length prepared >= 256 then Hashtbl.reset prepared;
      let pr = E.Sweep.prepare_row ~scale ~seed mix in
      Hashtbl.add prepared key pr;
      pr
  in
  let draining = ref false in
  if cfg.handle_signals then begin
    let drain _ = draining := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain)
  end;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* listeners *)
  let listeners = ref [] in
  let add_listener fd = listeners := fd :: !listeners in
  Option.iter
    (fun path ->
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let dir = Filename.dirname path in
      if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 16
       with e ->
         Unix.close fd;
         raise e);
      add_listener fd;
      Log.info cfg.log "listening" [ ("socket", Log.S path) ])
    cfg.socket_path;
  Option.iter
    (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 16
       with e ->
         Unix.close fd;
         raise e);
      add_listener fd;
      Log.info cfg.log "listening"
        [ ("tcp", Log.S (Printf.sprintf "127.0.0.1:%d" port)) ])
    cfg.tcp_port;
  (* client and job state *)
  let clients : (int, client) Hashtbl.t = Hashtbl.create 16 in
  let next_client = ref 0 in
  let next_job = ref 0 in
  let next_arrival = ref 0 in
  let queue : job list ref = ref [] in
  let refresh_gauges () =
    stats.queue_depth <- List.length !queue;
    stats.clients_now <- Hashtbl.length clients;
    stats.cache_cells <- Cache.size cache
  in
  let write_metrics () =
    Option.iter
      (fun path ->
        refresh_gauges ();
        try Vliw_util.Atomic_io.write_file ~path (metrics_exposition ())
        with e ->
          Log.warn cfg.log "could not write metrics"
            [ ("path", Log.S path); ("err", Log.S (Printexc.to_string e)) ])
      cfg.metrics_out
  in
  let close_client c =
    if not c.c_closed then begin
      c.c_closed <- true;
      Hashtbl.remove clients c.c_id;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ()
    end
  in
  let send c doc =
    if not c.c_closed then begin
      let line = Ndjson.line doc in
      let len = String.length line in
      let rec push off =
        if off < len then begin
          let n = Unix.write_substring c.c_fd line off (len - off) in
          push (off + n)
        end
      in
      try push 0
      with Unix.Unix_error _ ->
        (* peer gone mid-write: drop the client, keep its jobs *)
        close_client c
    end
  in
  let send_to_client_id id doc =
    match Hashtbl.find_opt clients id with
    | Some c -> send c doc
    | None -> ()
  in
  let send_error c ?job msg =
    stats.rejected <- stats.rejected + 1;
    send c
      (J.Obj
         (("reply", J.Str "error")
         :: ((match job with Some id -> [ ("job", J.Str id) ] | None -> [])
            @ [ ("error", J.Str msg) ])))
  in
  let emit_event job ?(extra = []) ev =
    send_to_client_id job.j_client
      (with_fields (("job", J.Str job.j_id) :: extra) (E.Sweep.json_of_event ev))
  in
  let emit_cell job idx (r : slot_result) =
    let mix, scheme = job.j_slots.(idx) in
    let cell =
      {
        E.Sweep.mix;
        scheme;
        ipc = r.r_ipc;
        elapsed_s = r.r_elapsed;
        started_s = Unix.gettimeofday () -. job.j_t0;
        worker = r.r_worker;
        telemetry = None;
        attempts = (if r.r_cached then 0 else 1);
        error = r.r_error;
      }
    in
    let total = Array.length job.j_slots in
    emit_event job
      ~extra:[ ("cached", J.Bool r.r_cached) ]
      (E.Sweep.Cell_finished
         {
           cell;
           completed = total - job.j_remaining;
           total;
           eta_s = Float.nan;
         })
  in
  let record_result job idx (r : slot_result) =
    job.j_results.(idx) <- Some r;
    job.j_remaining <- job.j_remaining - 1;
    if r.r_cached then begin
      job.j_cached <- job.j_cached + 1;
      stats.cells_cached <- stats.cells_cached + 1
    end
    else if r.r_error <> None then begin
      job.j_degraded <- job.j_degraded + 1;
      stats.cells_degraded <- stats.cells_degraded + 1
    end
    else begin
      job.j_simulated <- job.j_simulated + 1;
      stats.cells_simulated <- stats.cells_simulated + 1;
      let mix, scheme = job.j_slots.(idx) in
      Cache.add cache
        ~key:
          (Cache.cell_key
             ~scale:(E.Common.scale_name job.j_scale)
             ~seed:job.j_seed ~mix ~scheme)
        ~ipc:r.r_ipc
    end;
    emit_cell job idx r
  in
  let completed_jobs = ref 0 in
  let finalize job =
    let wall_s = Unix.gettimeofday () -. job.j_t0 in
    let cells =
      Array.mapi
        (fun i (mix, scheme) ->
          let r =
            match job.j_results.(i) with
            | Some r -> r
            | None -> assert false (* finalize requires j_remaining = 0 *)
          in
          {
            Ledger.mix;
            scheme;
            ipc = r.r_ipc;
            elapsed_s = r.r_elapsed;
            started_s = 0.0;
            worker = r.r_worker;
            attempts = (if r.r_cached then 0 else 1);
            degraded = r.r_error <> None;
          })
        job.j_slots
    in
    let mean =
      let sum = ref 0.0 and n = ref 0 in
      Array.iter
        (fun (c : Ledger.cell) ->
          if not (Float.is_nan c.ipc) then begin
            sum := !sum +. c.ipc;
            incr n
          end)
        cells;
      if !n = 0 then Float.nan else !sum /. float_of_int !n
    in
    let record =
      Ledger.make
        ~counters:
          [
            ("service.cells.cached", job.j_cached);
            ("service.cells.degraded", job.j_degraded);
            ("service.cells.simulated", job.j_simulated);
          ]
        ~gauges:
          ((if Float.is_nan mean then [] else [ ("ipc.mean", mean) ])
          @ Span.latency_gauges (List.rev job.j_spans))
        ~cells ~cmd:"serve"
        ~label:(if job.j_tag = "" then job.j_id else job.j_tag)
        ~scale:(E.Common.scale_name job.j_scale)
        ~seed:job.j_seed ~jobs:effective_jobs ~scheme_names:job.j_schemes
        ~mix_names:job.j_mixes ~wall_s ()
    in
    let run_id =
      if cfg.no_ledger then None
      else begin
        let t_app = Span.now tracer in
        match Ledger.append ~dir:cfg.runs_dir record with
        | r ->
          job_span job ~parent:job.j_root ~kind:Span.Ledger_append
            ~name:job.j_id ~lane:"server" ~start_s:t_app
            ~dur_s:(Span.now tracer -. t_app) ();
          Some r.Ledger.id
        | exception e ->
          Log.warn cfg.log "could not record serve ledger entry"
            [
              ("job", Log.S job.j_id); ("err", Log.S (Printexc.to_string e));
            ];
          None
      end
    in
    (* Close the root submit span last so every child fits inside it,
       then feed the finished tree to the exposition histograms. *)
    (match job.j_trace with
    | None -> ()
    | Some (trace, parent, _) ->
      let sp =
        {
          Span.trace;
          id = job.j_root;
          parent;
          kind = Span.Submit;
          name = job.j_id;
          lane = "server";
          start_s = job.j_t0c;
          dur_s = Span.now tracer -. job.j_t0c;
        }
      in
      Span.add tracer sp;
      job.j_spans <- sp :: job.j_spans;
      Span.observe_histograms !span_registry (List.rev job.j_spans));
    emit_event job
      (E.Sweep.Sweep_finished
         {
           total = Array.length job.j_slots;
           degraded = job.j_degraded;
           wall_s;
         });
    send_to_client_id job.j_client
      (J.Obj
         ([
            ("reply", J.Str "done");
            ("job", J.Str job.j_id);
            ("tag", J.Str job.j_tag);
          ]
         @ (match run_id with Some id -> [ ("run", J.Str id) ] | None -> [])
         @ [
             ("digest", J.Str (Ledger.grid_digest cells));
             ("cells", J.Num (float_of_int (Array.length cells)));
             ("cached", J.Num (float_of_int job.j_cached));
             ("simulated", J.Num (float_of_int job.j_simulated));
             ("degraded", J.Num (float_of_int job.j_degraded));
             ("wall_s", J.Num wall_s);
           ]
         @
         match job.j_trace with
         | Some (trace, _, true) ->
           [
             ("trace", J.Str (Span.id_to_hex trace));
             ("spans", Span.list_to_json (List.rev job.j_spans));
           ]
         | _ -> []));
    (match Hashtbl.find_opt clients job.j_client with
    | Some c -> c.c_inflight <- max 0 (c.c_inflight - 1)
    | None -> ());
    stats.jobs_completed <- stats.jobs_completed + 1;
    incr completed_jobs;
    Log.debug cfg.log "job done"
      [
        ("job", Log.S job.j_id);
        ("client", Log.I job.j_client);
        ("cached", Log.I job.j_cached);
        ("simulated", Log.I job.j_simulated);
        ("wall_s", Log.F wall_s);
      ];
    (match cfg.max_jobs with
    | Some n when !completed_jobs >= n ->
      Log.info cfg.log "max-jobs reached; draining" [ ("max_jobs", Log.I n) ];
      draining := true
    | _ -> ());
    write_metrics ()
  in
  (* --- request handling ----------------------------------------------- *)
  let handle_submit c (s : Request.submit) =
    let invalid msg =
      send_error c msg;
      None
    in
    match E.Common.scale_of_name s.scale with
    | None -> invalid (Printf.sprintf "unknown scale %S (quick|default|full)" s.scale)
    | Some scale -> (
      let mixes =
        match s.mixes with [] -> Vliw_workloads.Mixes.names | ms -> ms
      in
      let schemes =
        match s.schemes with
        | [] ->
          (* the fig10 grid: every catalog scheme except the
             single-threaded baseline *)
          List.filter_map
            (fun (e : Vliw_merge.Catalog.entry) ->
              if e.name = "ST" then None else Some e.name)
            Vliw_merge.Catalog.all
        | ss -> ss
      in
      match
        ( List.find_opt (fun m -> Vliw_workloads.Mixes.find m = None) mixes,
          List.find_opt (fun n -> Vliw_merge.Catalog.find n = None) schemes )
      with
      | Some m, _ -> invalid (Printf.sprintf "unknown mix %S" m)
      | _, Some n -> invalid (Printf.sprintf "unknown scheme %S" n)
      | None, None ->
        if !draining then invalid "server is draining; submission refused"
        else if c.c_inflight >= cfg.max_inflight then
          invalid
            (Printf.sprintf "per-client in-flight limit reached (%d)"
               cfg.max_inflight)
        else begin
          incr next_job;
          incr next_arrival;
          stats.submits <- stats.submits + 1;
          let slots =
            Array.of_list
              (List.concat_map
                 (fun mix -> List.map (fun scheme -> (mix, scheme)) schemes)
                 mixes)
          in
          let j_trace =
            match s.trace with
            | Some { Request.trace_id; parent_span } ->
              Some (trace_id, parent_span, true)
            | None ->
              if server_traced then Some (Span.fresh_id tracer, None, false)
              else None
          in
          let job =
            {
              j_id = Printf.sprintf "j%d" !next_job;
              j_tag = s.tag;
              j_client = c.c_id;
              j_priority = s.priority;
              j_arrival = !next_arrival;
              j_scale = scale;
              j_seed = s.seed;
              j_schemes = schemes;
              j_mixes = mixes;
              j_slots = slots;
              j_results = Array.make (Array.length slots) None;
              j_pending = [];
              j_remaining = Array.length slots;
              j_cached = 0;
              j_simulated = 0;
              j_degraded = 0;
              j_t0 = Unix.gettimeofday ();
              j_trace;
              j_root =
                (match j_trace with
                | Some _ -> Span.fresh_id tracer
                | None -> 0L);
              j_t0c = Span.now tracer;
              j_sched = false;
              j_spans = [];
            }
          in
          c.c_inflight <- c.c_inflight + 1;
          Log.debug cfg.log "submit accepted"
            [
              ("job", Log.S job.j_id);
              ("client", Log.I c.c_id);
              ("cells", Log.I (Array.length slots));
              ("traced", Log.B (j_trace <> None));
            ];
          (* Cache pass at submit time: hits are answered immediately
             and never occupy a scheduler slot. *)
          let cold = ref [] in
          Array.iteri
            (fun i (mix, scheme) ->
              match
                Cache.find cache
                  ~key:
                    (Cache.cell_key
                       ~scale:(E.Common.scale_name scale)
                       ~seed:s.seed ~mix ~scheme)
              with
              | Some _ -> ()
              | None -> cold := i :: !cold)
            slots;
          let cold = List.rev !cold in
          job.j_pending <- cold;
          send c
            (J.Obj
               [
                 ("reply", J.Str "accepted");
                 ("job", J.Str job.j_id);
                 ("tag", J.Str job.j_tag);
                 ("cells", J.Num (float_of_int (Array.length slots)));
                 ( "cached",
                   J.Num (float_of_int (Array.length slots - List.length cold))
                 );
                 ("cold", J.Num (float_of_int (List.length cold)));
                 ("queue_depth", J.Num (float_of_int (List.length !queue)));
               ]);
          emit_event job
            (E.Sweep.Sweep_started
               {
                 total = Array.length slots;
                 jobs = effective_jobs;
                 scale = E.Common.scale_name scale;
                 seed = s.seed;
               });
          Array.iteri
            (fun i (mix, scheme) ->
              match
                Cache.find cache
                  ~key:
                    (Cache.cell_key
                       ~scale:(E.Common.scale_name scale)
                       ~seed:s.seed ~mix ~scheme)
              with
              | Some ipc ->
                record_result job i
                  {
                    r_ipc = ipc;
                    r_cached = true;
                    r_elapsed = 0.0;
                    r_worker = 0;
                    r_error = None;
                  }
              | None -> ())
            slots;
          if job.j_remaining = 0 then begin
            finalize job;
            None
          end
          else Some job
        end)
  in
  let handle_request c req =
    stats.requests <- stats.requests + 1;
    c.c_requests <- c.c_requests + 1;
    if c.c_requests > cfg.max_requests then begin
      send_error c
        (Printf.sprintf "per-client request limit reached (%d)"
           cfg.max_requests);
      close_client c
    end
    else
      match req with
      | Request.Ping -> send c (J.Obj [ ("reply", J.Str "pong") ])
      | Request.Stats ->
        refresh_gauges ();
        let inflight =
          Hashtbl.fold
            (fun _ cl acc ->
              if cl.c_inflight > 0 then
                J.Obj
                  [
                    ("client", J.Num (float_of_int cl.c_id));
                    ("jobs", J.Num (float_of_int cl.c_inflight));
                  ]
                :: acc
              else acc)
            clients []
        in
        let latency =
          match Span.latency_gauges (Span.spans tracer) with
          | [] -> []
          | gs ->
            [ ("latency", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) gs)) ]
        in
        send c
          (J.Obj
             ([
                ("reply", J.Str "stats");
                ("kind", J.Str "service");
                ("queue_depth", J.Num (float_of_int stats.queue_depth));
                ("cache_cells", J.Num (float_of_int stats.cache_cells));
                ("clients", J.Num (float_of_int stats.clients_now));
                ("draining", J.Bool !draining);
                ("inflight", J.List inflight);
                ( "counters",
                  J.Obj
                    (List.map
                       (fun (k, v) -> (k, J.Num (float_of_int v)))
                       (counters_list ())) );
              ]
             @ latency))
      | Request.Metrics ->
        refresh_gauges ();
        send c
          (J.Obj
             [
               ("reply", J.Str "metrics");
               ("exposition", J.Str (metrics_exposition ()));
             ])
      | Request.Shutdown ->
        draining := true;
        send c (J.Obj [ ("reply", J.Str "shutting_down") ])
      | Request.Submit s -> (
        match handle_submit c s with
        | Some job -> queue := !queue @ [ job ]
        | None -> ())
  in
  let handle_line c = function
    | Ok doc -> (
      match Request.of_json doc with
      | Ok req -> handle_request c req
      | Error msg ->
        stats.requests <- stats.requests + 1;
        send_error c msg)
    | Error framing ->
      stats.requests <- stats.requests + 1;
      send_error c (Ndjson.error_message framing)
  in
  let read_client c =
    let buf = Bytes.create 4096 in
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 ->
      (* orderly EOF; an unterminated trailing line is a peer bug but
         there is no one left to tell *)
      ignore (Ndjson.close c.c_reader);
      close_client c
    | n ->
      List.iter (handle_line c)
        (Ndjson.feed c.c_reader ~len:n (Bytes.unsafe_to_string buf))
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_client c
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ()
  in
  let accept fd =
    match Unix.accept fd with
    | client_fd, _addr ->
      incr next_client;
      stats.clients_accepted <- stats.clients_accepted + 1;
      Log.debug cfg.log "client accepted" [ ("client", Log.I !next_client) ];
      Hashtbl.replace clients !next_client
        {
          c_id = !next_client;
          c_fd = client_fd;
          c_reader = Ndjson.reader ~max_line_bytes:cfg.max_line_bytes ();
          c_inflight = 0;
          c_requests = 0;
          c_closed = false;
        }
    | exception Unix.Unix_error _ -> ()
  in
  (* --- one batch of cold cells ----------------------------------------- *)
  let run_batch () =
    let snapshot =
      List.map
        (fun job ->
          {
            Scheduler.jid = job.j_id;
            priority = job.j_priority;
            arrival = job.j_arrival;
            cells = List.map (fun i -> (job, i)) job.j_pending;
          })
        !queue
    in
    let t_plan0 = Span.now tracer in
    let batch, _ = Scheduler.plan ~capacity:effective_jobs snapshot in
    let t_plan1 = Span.now tracer in
    let batch = Array.of_list batch in
    Array.iter
      (fun (_, (job, i)) ->
        job.j_pending <- List.filter (fun k -> k <> i) job.j_pending)
      batch;
    queue := List.filter (fun job -> job.j_pending <> []) !queue;
    (* A traced job's first batch closes its queue_wait (submit -> this
       planning pass) and pins the plan cost as its schedule span. *)
    Array.iter
      (fun (_, (job, _)) ->
        if not job.j_sched then begin
          job.j_sched <- true;
          job_span job ~parent:job.j_root ~kind:Span.Queue_wait ~name:job.j_id
            ~lane:"server" ~start_s:job.j_t0c
            ~dur_s:(t_plan0 -. job.j_t0c) ();
          job_span job ~parent:job.j_root ~kind:Span.Schedule ~name:job.j_id
            ~lane:"server" ~start_s:t_plan0
            ~dur_s:(t_plan1 -. t_plan0) ()
        end)
      batch;
    (* Prepared rows resolve in this domain (compilation must not race);
       workers only simulate. *)
    let tasks =
      Array.map
        (fun (_, (job, i)) ->
          let mix, scheme = job.j_slots.(i) in
          let pr = prepared_row ~scale:job.j_scale ~seed:job.j_seed mix in
          let column =
            E.Sweep.static_column (Vliw_merge.Catalog.find_exn scheme)
          in
          fun ~worker ->
            let t0 = Unix.gettimeofday () in
            let ipc = E.Sweep.simulate_prepared pr column in
            (ipc, Unix.gettimeofday () -. t0, worker))
        batch
    in
    let results = Vliw_util.Pool.run_results ~jobs:cfg.jobs tasks in
    let touched = Hashtbl.create 8 in
    Array.iteri
      (fun k res ->
        let _, (job, i) = batch.(k) in
        Hashtbl.replace touched job.j_id job;
        match res with
        | Ok (ipc, elapsed, worker) ->
          let mix, scheme = job.j_slots.(i) in
          job_span job ~parent:job.j_root ~kind:Span.Simulate_cell
            ~name:(mix ^ "/" ^ scheme)
            ~lane:(Printf.sprintf "pool %d" worker)
            ~start_s:t_plan1 ~dur_s:elapsed ();
          record_result job i
            {
              r_ipc = ipc;
              r_cached = false;
              r_elapsed = elapsed;
              r_worker = worker;
              r_error = None;
            }
        | Error e ->
          record_result job i
            {
              r_ipc = Float.nan;
              r_cached = false;
              r_elapsed = 0.0;
              r_worker = 0;
              r_error = Some (Printexc.to_string e);
            })
      results;
    Hashtbl.iter
      (fun _ job -> if job.j_remaining = 0 then finalize job)
      touched
  in
  (* --- main loop -------------------------------------------------------- *)
  write_metrics ();
  let cleanup () =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !listeners;
    Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
      clients;
    Hashtbl.reset clients;
    Option.iter
      (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
      cfg.socket_path
  in
  Fun.protect ~finally:cleanup (fun () ->
      let finished () = !draining && !queue = [] in
      while not (finished ()) do
        let client_fds =
          Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) clients []
        in
        let watch =
          (if !draining then [] else !listeners) @ client_fds
        in
        let timeout = if !queue <> [] then 0.0 else 0.2 in
        (match Unix.select watch [] [] timeout with
        | ready, _, _ ->
          List.iter
            (fun fd ->
              if List.mem fd !listeners then accept fd
              else
                match
                  Hashtbl.fold
                    (fun _ c acc -> if c.c_fd = fd then Some c else acc)
                    clients None
                with
                | Some c -> read_client c
                | None -> ())
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        if !queue <> [] then run_batch ()
      done;
      write_metrics ();
      Option.iter
        (fun path ->
          try
            Vliw_util.Atomic_io.write_file ~path
              (Span.to_chrome ~process_name:"vliwsim serve"
                 (Span.spans tracer))
          with e ->
            Log.warn cfg.log "could not write trace"
              [ ("path", Log.S path); ("err", Log.S (Printexc.to_string e)) ])
        cfg.trace_out;
      Log.info cfg.log "shutdown"
        [
          ("jobs", Log.I stats.jobs_completed);
          ("cached", Log.I stats.cells_cached);
          ("simulated", Log.I stats.cells_simulated);
        ])
