(* Request codec. The wire shape mirrors the run ledger's conventions:
   seeds travel as hex strings (Json numbers are floats and cannot carry
   64 bits), names as plain strings, absent fields as defaults. *)

module J = Vliw_util.Json

(* A traced submit carries the client's trace id and (optionally) the
   client-side root span the server's spans should hang under. Both are
   optional on the wire: absent means no-trace, so old peers and old
   requests keep parsing. *)
type trace = { trace_id : int64; parent_span : int64 option }

type submit = {
  tag : string;
  scale : string;
  seed : int64;
  priority : int;
  mixes : string list;
  schemes : string list;
  trace : trace option;
}

type t = Submit of submit | Ping | Stats | Metrics | Shutdown

let default_submit =
  {
    tag = "";
    scale = "default";
    seed = Vliw_experiments.Common.default_seed;
    priority = 0;
    mixes = [];
    schemes = [];
    trace = None;
  }

let hex id = Printf.sprintf "0x%Lx" id

let trace_fields = function
  | None -> []
  | Some { trace_id; parent_span } -> (
    (("trace", J.Str (hex trace_id)) :: [])
    @
    match parent_span with
    | None -> []
    | Some s -> [ ("span", J.Str (hex s)) ])

let to_json = function
  | Submit s ->
    J.Obj
      ([
         ("op", J.Str "submit");
         ("tag", J.Str s.tag);
         ("scale", J.Str s.scale);
         ("seed", J.Str (hex s.seed));
         ("priority", J.Num (float_of_int s.priority));
         ("mixes", J.List (List.map (fun m -> J.Str m) s.mixes));
         ("schemes", J.List (List.map (fun m -> J.Str m) s.schemes));
       ]
      @ trace_fields s.trace)
  | Ping -> J.Obj [ ("op", J.Str "ping") ]
  | Stats -> J.Obj [ ("op", J.Str "stats") ]
  | Metrics -> J.Obj [ ("op", J.Str "metrics") ]
  | Shutdown -> J.Obj [ ("op", J.Str "shutdown") ]

(* Decoding is strict about types but lenient about absence: a field
   that is present with the wrong type is a client bug worth reporting,
   while an absent field just means "the default". *)
let ( let* ) = Result.bind

let field_names j key =
  match J.member key j with
  | None -> Ok []
  | Some (J.List items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | J.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "%S entries must be strings" key)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "%S must be a list of strings" key)

let field_string j key default =
  match J.member key j with
  | None -> Ok default
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S must be a string" key)

let field_int j key default =
  match J.member key j with
  | None -> Ok default
  | Some v -> (
    match J.to_int v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%S must be an integer" key))

(* Seeds: a hex/decimal string ("0x2a", "42") or a small integer. *)
let field_seed j key default =
  match J.member key j with
  | None -> Ok default
  | Some (J.Str s) -> (
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "%S is not a valid 64-bit seed" key))
  | Some (J.Num v) when Float.is_integer v -> Ok (Int64.of_float v)
  | Some _ -> Error (Printf.sprintf "%S must be a seed string" key)

(* Like {!field_seed} but with no default: absence is [None]. *)
let field_id_opt j key =
  match J.member key j with
  | None -> Ok None
  | Some (J.Str s) -> (
    match Int64.of_string_opt s with
    | Some v -> Ok (Some v)
    | None -> Error (Printf.sprintf "%S is not a valid 64-bit id" key))
  | Some _ -> Error (Printf.sprintf "%S must be a hex id string" key)

let field_trace j =
  let* trace_id = field_id_opt j "trace" in
  let* parent_span = field_id_opt j "span" in
  match trace_id with
  | None -> Ok None
  | Some trace_id -> Ok (Some { trace_id; parent_span })

let of_json j =
  match J.member "op" j with
  | None -> Error "missing \"op\" field"
  | Some (J.Str "ping") -> Ok Ping
  | Some (J.Str "stats") -> Ok Stats
  | Some (J.Str "metrics") -> Ok Metrics
  | Some (J.Str "shutdown") -> Ok Shutdown
  | Some (J.Str "submit") ->
    let d = default_submit in
    let* tag = field_string j "tag" d.tag in
    let* scale = field_string j "scale" d.scale in
    let* seed = field_seed j "seed" d.seed in
    let* priority = field_int j "priority" d.priority in
    let* mixes = field_names j "mixes" in
    let* schemes = field_names j "schemes" in
    let* trace = field_trace j in
    Ok (Submit { tag; scale; seed; priority; mixes; schemes; trace })
  | Some (J.Str op) -> Error (Printf.sprintf "unknown op %S" op)
  | Some _ -> Error "\"op\" must be a string"

let of_line line =
  match J.parse line with
  | Ok j -> of_json j
  | Error msg -> Error ("malformed JSON line: " ^ msg)
