(** Content-addressed per-cell result cache over the run ledger.

    A sweep cell's IPC is a pure function of (scale, master seed, mix,
    static scheme) — {!Vliw_experiments.Sweep} compiles each mix from a
    seed derived only from the master seed and the mix name, and every
    scheme column shares its row's seed. That purity is what makes the
    cell result content-addressable: {!cell_key} fingerprints exactly
    those four inputs, and a hit can be served without simulating,
    bit-identical to a cold run.

    {!preload} indexes [_runs/ledger.jsonl]: only static-policy
    [exp]/[serve] records are ingested — their cells come from the
    standard sweep derivation. [run] records simulate from the master
    seed directly (a different derivation over the same names) and
    adaptive records depend on a controller, so both are skipped.
    Degraded cells (nan) are never cached: a resubmission should retry
    them. *)

val cell_key :
  scale:string -> seed:int64 -> mix:string -> scheme:string -> string
(** FNV-1a fingerprint of the cell's full input. *)

type t

val create : unit -> t

val preload : t -> dir:string -> int
(** Index every cacheable cell of the ledger in [dir]; returns how many
    distinct cells the cache now holds. Records appended later are
    picked up by the server's own {!add} calls, not by re-reading. *)

val find : t -> key:string -> float option
(** The cached IPC (bit-exact) or [None] for a cold cell. *)

val add : t -> key:string -> ipc:float -> unit
(** Record a freshly simulated cell. nan (degraded) results are
    ignored. *)

val size : t -> int

val cacheable_run : Vliw_telemetry.Ledger.run -> bool
(** Whether {!preload} would ingest this record's cells. *)
