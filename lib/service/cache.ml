(* The result cache: a hash table from cell fingerprints to IPC values.

   Keys hash (scale, seed, mix, scheme) with the same FNV-1a the ledger
   uses for its fingerprints, NUL-separated so no field concatenation
   can collide with another split of the same bytes. Values are the raw
   floats — equal keys imply bit-equal IPC (cells are pure functions of
   the key), so insertion order between duplicate sources is
   irrelevant. *)

module Ledger = Vliw_telemetry.Ledger

let fnv1a64 init s =
  String.fold_left
    (fun acc c ->
      Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001B3L)
    init s

let cell_key ~scale ~seed ~mix ~scheme =
  let key =
    String.concat "\x00"
      [ "cell"; scale; Printf.sprintf "0x%Lx" seed; mix; scheme ]
  in
  Printf.sprintf "%016Lx" (fnv1a64 0xCBF29CE484222325L key)

type t = (string, float) Hashtbl.t

let create () : t = Hashtbl.create 1024

let find t ~key = Hashtbl.find_opt t key

let add t ~key ~ipc = if not (Float.is_nan ipc) then Hashtbl.replace t key ipc

let size t = Hashtbl.length t

(* Only records whose cells followed the standard sweep derivation may
   feed the cache: static exp sweeps, the service's own records, and
   distributed sweeps (whose grids are bit-identical to exp by
   construction). `run` records seed the simulation differently and
   adaptive records depend on controller state, so their cells are not
   addressable by (scale, seed, mix, scheme) alone. *)
let cacheable_run (r : Ledger.run) =
  (r.cmd = "exp" || r.cmd = "serve" || r.cmd = "dist") && r.policy = "static"

let preload t ~dir =
  List.iter
    (fun (r : Ledger.run) ->
      if cacheable_run r then
        Array.iter
          (fun (c : Ledger.cell) ->
            if not c.degraded then
              add t
                ~key:
                  (cell_key ~scale:r.scale ~seed:r.seed ~mix:c.mix
                     ~scheme:c.scheme)
                ~ipc:c.ipc)
          r.cells)
    (Ledger.load ~dir);
  size t
