(** Priority queue with backfilling for the sweep service.

    The server executes cold cells in fixed-size batches (one
    {!Vliw_util.Pool} dispatch per batch, [capacity] = worker count).
    {!plan} decides what the next batch runs; it is a pure function of
    the queue so the policy is unit-testable without a daemon.

    Policy, in order:
    + The queue is ranked by (priority desc, arrival asc) — FIFO within
      a priority level, strict priority across levels. A job submitted
      mid-drain preempts lower-priority work at the next batch
      boundary, never mid-batch.
    + The head job fills the batch first.
    + Idle slots left by a draining head are {e backfilled}: among the
      waiting jobs, those whose whole remaining cell count fits in the
      idle capacity run first, smallest first — so a quick probe slips
      through beside a big sweep instead of queueing behind it.
      (Because a batch is a barrier, lending the head's idle slots to
      anyone cannot delay the head — backfilling here is free.)
    + If slots remain and no waiting job fits entirely, the best-ranked
      waiting job fills them partially; workers never idle while cells
      wait. *)

type 'a job = {
  jid : string;
  priority : int;
  arrival : int;  (** Monotonic submission sequence; the FIFO tiebreak. *)
  cells : 'a list;  (** Cells not yet dispatched, in submission order. *)
}

val rank : 'a job -> 'a job -> int
(** Queue order: higher [priority] first, then lower [arrival]. *)

val plan : capacity:int -> 'a job list -> (string * 'a) list * 'a job list
(** [plan ~capacity queue] is [(batch, queue')]: at most [capacity]
    [(jid, cell)] assignments in dispatch order, and the queue with
    those cells removed (jobs left empty are dropped; survivors come
    back in rank order). [capacity <= 0] plans an empty batch. *)
