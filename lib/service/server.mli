(** The sweep-service daemon behind [vliwsim serve].

    A single-process event loop: accepts clients on a Unix socket
    (and/or a loopback TCP port), speaks NDJSON ({!Request} in,
    {!Vliw_experiments.Sweep.event}-shaped lines plus service replies
    out), serves cache-hit cells straight from the content-addressed
    {!Cache} (preloaded from the run ledger), and runs cold cells in
    {!Scheduler}-planned batches on the {!Vliw_util.Pool} Domain pool.
    Every completed job is appended to the run ledger as a [serve]
    record, so a served grid is [runs diff]-able against (and
    bit-identical to) a locally run [exp] of the same configuration —
    and so the next daemon instance starts with this one's results
    already cached.

    Reply lines, dispatched on their first field:
    - [{"reply":"accepted","job":...,"cells":N,"cached":H,"cold":C}]
    - [{"job":...,"ev":"sweep_started"|"cell_finished"|"sweep_finished",...}]
      — the {!Vliw_experiments.Sweep.json_of_event} shape, with the
      owning ["job"] prepended and, on cells, ["cached"] (a cached
      cell also has [attempts = 0], like a checkpoint-restored one)
    - [{"reply":"done","job":...,"digest":...,"cached":H,"simulated":S}]
    - [{"reply":"error","error":...}], [{"reply":"pong"}],
      [{"reply":"stats",...}], [{"reply":"metrics","exposition":...}],
      [{"reply":"shutting_down"}]

    Shutdown is graceful: on a [shutdown] request, SIGINT/SIGTERM (when
    [handle_signals]) or after [max_jobs] completed jobs, the daemon
    stops accepting submissions, drains the queue, sends the pending
    [done] replies and exits; the Unix socket file is unlinked. *)

type config = {
  socket_path : string option;  (** Unix listener ([None] = no socket). *)
  tcp_port : int option;  (** Loopback TCP listener ([None] = none). *)
  runs_dir : string;  (** Ledger directory: cache source and sink. *)
  jobs : int;  (** Pool workers per batch; [<= 0] = one per core. *)
  no_ledger : bool;  (** Do not append served jobs to the ledger. *)
  metrics_out : string option;
      (** Rewrite an OpenMetrics exposition of the service counters here
          (atomically) at startup and after every completed job. *)
  max_line_bytes : int;  (** Per-request line budget ({!Vliw_util.Ndjson}). *)
  max_inflight : int;  (** Queued/running jobs allowed per client. *)
  max_requests : int;  (** Requests per connection before it is closed. *)
  max_jobs : int option;  (** Drain and exit after this many jobs. *)
  handle_signals : bool;  (** Install SIGINT/SIGTERM drain handlers. *)
  log : Vliw_util.Log.t;
      (** Structured diagnostics (job/client ids as fields); default
          {!Vliw_util.Log.null}. The CLI points it at stderr. *)
  tracer : Vliw_telemetry.Span.collector option;
      (** When set (or when [trace_out] is), every job records a span
          tree — a [submit] root (parented to the client's span when
          the request carries trace ids), [queue_wait] + [schedule]
          closed at its first batch, one [simulate_cell] per cold cell
          and a [ledger_append] — fed to the stats reply's latency
          quantiles and the OpenMetrics histograms. A request carrying
          trace ids is traced even when both are [None], and gets its
          spans back on the [done] reply. Observation only: grids are
          bit-identical with tracing on or off. *)
  trace_out : string option;
      (** Write the daemon-lifetime merged Chrome trace here at
          shutdown. *)
}

val default_config : config
(** No listeners (the CLI fills one in), [runs_dir = "_runs"],
    [jobs = 1], 1 MiB lines, 4 in-flight jobs and 10000 requests per
    client, no signal handling, silent log. *)

val metrics_exposition : unit -> string
(** OpenMetrics exposition of the current process's service counters —
    what the [metrics] op and [metrics_out] emit. Meaningful while (or
    after) {!run} executes; before that it is an all-zero exposition. *)

val run : config -> unit
(** Run the daemon until graceful shutdown. Raises [Invalid_argument]
    when no listener is configured, and [Unix.Unix_error] when binding
    fails. *)
