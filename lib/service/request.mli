(** The sweep service's typed request protocol.

    One request per NDJSON line, dispatched on an ["op"] field. The
    codec here is structural only — field presence and types. Semantic
    validation (do the mix/scheme/scale names exist, is the client
    within its limits) is the server's job, so a request that
    round-trips through {!to_json}/{!of_json} is not necessarily
    servable. *)

(** Trace context a client attaches to a submit. [trace_id] names the
    trace; [parent_span] is the client's root span, which the server's
    spans hang under. On the wire both are optional hex-string fields
    (["trace"], ["span"]): absent means no-trace, so pre-tracing peers
    keep parsing. *)
type trace = { trace_id : int64; parent_span : int64 option }

type submit = {
  tag : string;  (** Client-chosen label echoed in every reply. *)
  scale : string;  (** "quick" | "default" | "full" (validated server-side). *)
  seed : int64;  (** Master sweep seed; on the wire as a hex string. *)
  priority : int;  (** Higher runs sooner; ties break FIFO. *)
  mixes : string list;  (** [[]] = every Table 2 mix. *)
  schemes : string list;  (** [[]] = every catalog scheme except ST. *)
  trace : trace option;  (** [None] = untraced (the wire default). *)
}

type t =
  | Submit of submit
  | Ping  (** Liveness probe; answered with a [pong] reply. *)
  | Stats  (** Queue depth, cache size and service counters. *)
  | Metrics  (** OpenMetrics exposition of the service counters. *)
  | Shutdown  (** Graceful drain: finish queued jobs, then exit. *)

val default_submit : submit
(** The full default grid ([mixes = []], [schemes = []]) at default
    scale with the default sweep seed, priority 0 — the same sweep
    [vliwsim exp fig10] runs. *)

val to_json : t -> Vliw_util.Json.t

val of_json : Vliw_util.Json.t -> (t, string) result
(** Structural decode: unknown or missing ["op"] values, non-string
    names and unparseable seeds are errors; absent submit fields take
    their {!default_submit} values. [of_json (to_json r) = Ok r] for
    every request (QCheck-property-tested). *)

val of_line : string -> (t, string) result
(** Parse one NDJSON line: JSON parse errors become [Error]. *)
