(* Batch planner: priority + FIFO at the head, smallest-fits-first
   backfilling in the tail. Pure — the server owns the mutable queue
   and feeds a snapshot in. *)

type 'a job = {
  jid : string;
  priority : int;
  arrival : int;
  cells : 'a list;
}

let rank a b =
  match compare b.priority a.priority with
  | 0 -> compare a.arrival b.arrival
  | c -> c

let take n xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go n [] xs

let plan ~capacity queue =
  let ranked = List.stable_sort rank queue in
  (* Phase 1: the head job alone fills the batch. Slots it leaves idle
     belong to the backfill phase — NOT to a partial take from the next
     head, or a quick probe could never slip past two big sweeps. *)
  let slots, batch, waiting =
    match ranked with
    | j :: rest when capacity > 0 ->
      let taken, left = take capacity j.cells in
      let batch = List.rev (List.map (fun c -> (j.jid, c)) taken) in
      if left = [] then (capacity - List.length taken, batch, rest)
      else (0, batch, { j with cells = left } :: rest)
    | waiting -> (max 0 capacity, [], waiting)
  in
  (* Phase 2: backfill — wholly-fitting jobs first, smallest first (tie:
     rank), then top up from the best-ranked leftover so no slot idles
     while cells wait. *)
  let rec backfill slots batch waiting =
    if slots = 0 || waiting = [] then (batch, waiting)
    else begin
      let fitting =
        List.filter (fun j -> List.length j.cells <= slots) waiting
      in
      match
        List.stable_sort
          (fun a b ->
            match compare (List.length a.cells) (List.length b.cells) with
            | 0 -> rank a b
            | c -> c)
          fitting
      with
      | j :: _ ->
        let batch =
          List.rev_append (List.map (fun c -> (j.jid, c)) j.cells) batch
        in
        backfill
          (slots - List.length j.cells)
          batch
          (List.filter (fun j' -> j'.jid <> j.jid) waiting)
      | [] -> (
        match waiting with
        | j :: rest ->
          let taken, left = take slots j.cells in
          let batch =
            List.rev_append (List.map (fun c -> (j.jid, c)) taken) batch
          in
          (batch, { j with cells = left } :: rest)
        | [] -> (batch, waiting))
    end
  in
  let batch, waiting = backfill slots batch waiting in
  (List.rev batch, waiting)
