(** VLIW instructions.

    An instruction is one "very long word": for each cluster, the (possibly
    empty) list of operations the compiler scheduled there for the same
    cycle. Instructions are the unit of merging — the paper's VLIW
    semantics forbid issuing only part of an instruction. *)

type signature = {
  sg_id : int;
      (** Dense intern id: signatures with equal content share an id
          process-wide, so decision caches can key on one word. *)
  sg_mask : int;  (** Bitmask of occupied clusters. *)
  sg_counts : int array;
      (** Per-cluster packed class counts (see {!pack_counts}); [0] for
          empty clusters. *)
  sg_pins : int array;
      (** Per-cluster fixed-slot pinned masks: the slots this
          instruction's operations claim when laid out in isolation
          ({!pinned_mask}); [0] for empty clusters, [-1] when the
          cluster's operations cannot be placed. *)
  sg_ops : int;  (** Total operation count. *)
}
(** The merge engine's precomputed, immutable view of an instruction:
    everything the per-cycle conflict checks need, as integers. *)

type t = {
  ops : Op.t list array;  (** Per-cluster operations; length = clusters. *)
  addr : int;  (** Static byte address, used for ICache lookups. *)
  mutable sg : (Machine.t * signature) option;
      (** Signature cache, filled by {!signature}. Treat as private. *)
}

val make : clusters:int -> addr:int -> t
(** Empty instruction (explicit NOP in every slot). *)

val of_cluster_ops : addr:int -> Op.t list array -> t

val cluster_mask : t -> int
(** Bitmask of clusters holding at least one operation. *)

val op_count : t -> int
(** Total operations (issue-slot demand). *)

val ops_in : t -> int -> Op.t list
(** Operations scheduled on the given cluster. *)

val is_empty : t -> bool

val has_branch : t -> bool

val mem_ops : t -> Op.t list
(** All loads and stores, in cluster order. *)

val iter_mem_ops : (Op.t -> unit) -> t -> unit
(** Allocation-free iteration over all loads and stores, in cluster
    order. *)

val mem_op_count : t -> int
(** Number of loads and stores; read from the packed signature counts
    when a signature is cached, so the retire path pays no traversal. *)

val class_counts : Op.t list -> mem:int ref -> mul:int ref -> branch:int ref -> alu:int ref -> unit
(** Accumulate per-class counts of an operation list. *)

val fits_cluster : Machine.t -> Op.t list -> bool
(** Whether an operation multiset satisfies one cluster's slot constraints:
    mem ops <= LSUs, muls <= multipliers, branches <= branch slots, total
    <= issue width. *)

val well_formed : Machine.t -> t -> bool
(** Every cluster of the instruction individually satisfies
    {!fits_cluster} and the cluster count matches the machine. *)

(** {1 Signatures}

    Signatures let the merge engine's conflict checks run as pure
    integer/bitmask arithmetic: class counts are packed into one word
    per cluster ([mem | mul<<15 | branch<<30 | total<<45]) so two
    clusters' demands combine with [+], and fixed-slot pinned masks are
    computed once instead of re-routing per merge check. *)

val pack_counts : Op.t list -> int
(** Packed class-count word of an operation list. *)

val packed_fits : Machine.t -> int -> bool
(** Whether a packed class-count word satisfies one cluster's slot
    constraints — the packed equivalent of {!fits_cluster}, also valid
    for the sum of several packed words. *)

val pinned_mask : Machine.t -> Op.t list -> int
(** Bitmask of the issue slots the operations claim under the greedy
    fixed-slot layout (the same discipline as the routing block), or
    [-1] when they cannot be placed. *)

val intern_count : unit -> int
(** Number of distinct signatures interned process-wide. *)

val signature : Machine.t -> t -> signature
(** The instruction's signature for the given machine, memoized on the
    instruction. The compiler precomputes this at program-generation
    time so simulation never recomputes it. *)

val pp : Machine.t -> Format.formatter -> t -> unit
(** Renders like the paper's Figure 1: one cell per issue slot, "-" for
    empty slots, clusters separated by "|". *)
