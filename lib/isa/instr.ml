type signature = {
  sg_id : int;
  sg_mask : int;
  sg_counts : int array;
  sg_pins : int array;
  sg_ops : int;
}

type t = {
  ops : Op.t list array;
  addr : int;
  mutable sg : (Machine.t * signature) option;
}

let make ~clusters ~addr = { ops = Array.make clusters []; addr; sg = None }

let of_cluster_ops ~addr ops = { ops; addr; sg = None }

let cluster_mask t =
  let mask = ref 0 in
  Array.iteri (fun c ops -> if ops <> [] then mask := !mask lor (1 lsl c)) t.ops;
  !mask

let op_count t =
  match t.sg with
  | Some (_, sg) -> sg.sg_ops
  | None -> Array.fold_left (fun acc ops -> acc + List.length ops) 0 t.ops

let ops_in t c = t.ops.(c)

let is_empty t = Array.for_all (fun ops -> ops = []) t.ops

let has_branch_slow t =
  Array.exists (List.exists (fun (op : Op.t) -> op.klass = Op.Branch)) t.ops

let mem_ops t =
  Array.fold_left
    (fun acc ops -> acc @ List.filter Op.is_mem ops)
    [] t.ops

(* Top-level recursion (rather than nested closures over [f]) keeps the
   per-retirement iteration allocation-free. *)
let rec iter_mem_list f = function
  | [] -> ()
  | (op : Op.t) :: rest ->
    if Op.is_mem op then f op;
    iter_mem_list f rest

let iter_mem_ops f t =
  for c = 0 to Array.length t.ops - 1 do
    iter_mem_list f t.ops.(c)
  done

let rec count_mem_list acc = function
  | [] -> acc
  | (op : Op.t) :: rest ->
    count_mem_list (if Op.is_mem op then acc + 1 else acc) rest

let class_counts ops ~mem ~mul ~branch ~alu =
  let count (op : Op.t) =
    match op.klass with
    | Op.Load | Op.Store -> incr mem
    | Op.Mul -> incr mul
    | Op.Branch -> incr branch
    | Op.Alu | Op.Copy -> incr alu
  in
  List.iter count ops

let fits_cluster (m : Machine.t) ops =
  let mem = ref 0 and mul = ref 0 and branch = ref 0 and alu = ref 0 in
  class_counts ops ~mem ~mul ~branch ~alu;
  !mem <= m.n_lsu && !mul <= m.n_mul && !branch <= m.n_branch
  && !mem + !mul + !branch + !alu <= m.issue_width

(* --- signatures: the merge engine's precomputed view -----------------

   A signature condenses everything the per-cycle conflict checks need
   into integers: the cluster-occupancy mask, one packed per-cluster
   class-count word, and the fixed-slot pinned mask from a single greedy
   layout pass. Conflict checks then reduce to bitmask tests and packed
   additions, with no list traversal and no re-routing. *)

(* Packed class counts: mem | mul<<15 | branch<<30 | total<<45. Fifteen
   bits per field keeps sums of any realistic number of merged packets
   far from overflow in a 63-bit int, and lets two packed words be
   combined with plain [+]. *)
let count_shift_mul = 15
let count_shift_branch = 30
let count_shift_total = 45
let count_field = 0x7FFF

let pack_counts ops =
  let mem = ref 0 and mul = ref 0 and branch = ref 0 and alu = ref 0 in
  class_counts ops ~mem ~mul ~branch ~alu;
  !mem
  lor (!mul lsl count_shift_mul)
  lor (!branch lsl count_shift_branch)
  lor ((!mem + !mul + !branch + !alu) lsl count_shift_total)

let rec sum_mem_fields counts i acc =
  if i < 0 then acc
  else sum_mem_fields counts (i - 1) (acc + (counts.(i) land count_field))

let rec sum_mem_lists ops i acc =
  if i < 0 then acc else sum_mem_lists ops (i - 1) (count_mem_list acc ops.(i))

let mem_op_count t =
  match t.sg with
  | Some (_, sg) -> sum_mem_fields sg.sg_counts (Array.length sg.sg_counts - 1) 0
  | None -> sum_mem_lists t.ops (Array.length t.ops - 1) 0

let packed_fits (m : Machine.t) packed =
  packed land count_field <= m.n_lsu
  && (packed lsr count_shift_mul) land count_field <= m.n_mul
  && (packed lsr count_shift_branch) land count_field <= m.n_branch
  && packed lsr count_shift_total <= m.issue_width

(* Same greedy discipline as the routing block applied to one thread's
   operations in isolation: fixed-slot classes claim their dedicated
   slots in list order, ALU/copy operations fill any free slot. Returns
   the bitmask of claimed slots, or -1 when the operations cannot be
   placed at all. *)
let pinned_mask (m : Machine.t) ops =
  let used = ref 0 in
  let claim pred =
    let rec find s =
      if s >= m.issue_width then false
      else if !used land (1 lsl s) = 0 && pred s then begin
        used := !used lor (1 lsl s);
        true
      end
      else find (s + 1)
    in
    find 0
  in
  let flexible (op : Op.t) =
    match op.klass with Op.Alu | Op.Copy -> true | _ -> false
  in
  let fixed, alus = List.partition (fun op -> not (flexible op)) ops in
  let ok_fixed =
    List.for_all
      (fun (op : Op.t) -> claim (fun s -> Machine.slot_allows m ~slot:s op.klass))
      fixed
  in
  let ok_alu = List.for_all (fun _ -> claim (fun _ -> true)) alus in
  if ok_fixed && ok_alu then !used else -1

(* Signature interning: distinct signature contents get small dense ids,
   so downstream decision caches can key on one word per port instead of
   the full per-cluster arrays. The table is global and mutex-protected;
   it is only consulted on the compute path, which the compiler runs
   eagerly (and in the parent domain) at program-generation time. *)
let intern_mutex = Mutex.create ()

let intern_tbl : (int * int array * int array, int) Hashtbl.t =
  Hashtbl.create 256

let intern sg_mask sg_counts sg_pins =
  Mutex.protect intern_mutex (fun () ->
      let key = (sg_mask, sg_counts, sg_pins) in
      match Hashtbl.find_opt intern_tbl key with
      | Some id -> id
      | None ->
        let id = Hashtbl.length intern_tbl in
        Hashtbl.add intern_tbl key id;
        id)

let intern_count () = Mutex.protect intern_mutex (fun () -> Hashtbl.length intern_tbl)

let compute_signature (m : Machine.t) t =
  let n = Array.length t.ops in
  let counts = Array.make n 0 in
  let pins = Array.make n 0 in
  let mask = ref 0 in
  let total = ref 0 in
  for c = 0 to n - 1 do
    let ops = t.ops.(c) in
    if ops <> [] then begin
      mask := !mask lor (1 lsl c);
      counts.(c) <- pack_counts ops;
      pins.(c) <- pinned_mask m ops;
      total := !total + List.length ops
    end
  done;
  {
    sg_id = intern !mask counts pins;
    sg_mask = !mask;
    sg_counts = counts;
    sg_pins = pins;
    sg_ops = !total;
  }

(* Memoized per instruction. The compiler precomputes signatures in the
   parent domain (Program.generate), so worker domains of a sweep only
   ever read the cache. A machine mismatch (tests reusing an instruction
   across machines) recomputes and recaches. *)
let signature (m : Machine.t) t =
  match t.sg with
  | Some (m', sg) when m' == m -> sg
  | Some (m', sg) when m' = m -> sg
  | _ ->
    let sg = compute_signature m t in
    t.sg <- Some (m, sg);
    sg

(* Top-level recursion instead of [Array.exists]: the closure it takes
   (and the stdlib's internal loop) are minor-heap blocks, and this runs
   once per retirement inside the zero-allocation steady-state loop. *)
let rec counts_have_branch counts i =
  i >= 0
  && ((counts.(i) lsr count_shift_branch) land count_field <> 0
     || counts_have_branch counts (i - 1))

let has_branch t =
  match t.sg with
  | Some (_, sg) ->
    counts_have_branch sg.sg_counts (Array.length sg.sg_counts - 1)
  | None -> has_branch_slow t

let well_formed (m : Machine.t) t =
  Array.length t.ops = m.clusters && Array.for_all (fits_cluster m) t.ops

(* Greedy slot assignment for display: fixed-slot classes claim their
   dedicated slots, ALU operations fill whatever is left. *)
let slot_layout (m : Machine.t) ops =
  let slots = Array.make m.issue_width None in
  let place pred op =
    let rec find s =
      if s >= m.issue_width then None
      else if slots.(s) = None && pred s then Some s
      else find (s + 1)
    in
    match find 0 with
    | Some s -> slots.(s) <- Some op
    | None -> ()
  in
  let flexible (op : Op.t) =
    match op.klass with Op.Alu | Op.Copy -> true | _ -> false
  in
  let fixed, alus = List.partition (fun op -> not (flexible op)) ops in
  List.iter
    (fun (op : Op.t) -> place (fun s -> Machine.slot_allows m ~slot:s op.klass) op)
    fixed;
  List.iter (fun op -> place (fun _ -> true) op) alus;
  slots

let pp m ppf t =
  Array.iteri
    (fun c ops ->
      if c > 0 then Format.fprintf ppf " |";
      let slots = slot_layout m ops in
      Array.iter
        (fun slot ->
          match slot with
          | None -> Format.fprintf ppf " %4s" "-"
          | Some (op : Op.t) -> Format.fprintf ppf " %4s" (Op.class_name op.klass))
        slots)
    t.ops
