type stat = { mean : float; sd : float }

type t = {
  n : int;
  smt4_over_smt2 : stat;
  smt_over_csmt : stat;
  sc3_over_csmt4 : stat;
  sc3_over_smt2 : stat;
  sc3_below_smt4 : stat;
}

let default_seeds = [ 11L; 222L; 3333L; 44444L; 555555L ]

let stat xs =
  let arr = Array.of_list xs in
  { mean = Vliw_util.Stats.mean arr; sd = Vliw_util.Stats.stddev arr }

let run ?(scale = Common.Default) ?seeds ?jobs () =
  let seeds =
    match seeds with
    | Some s -> s
    | None ->
      (* Quick scale is smoke-test territory: two replicates keep the
         full-registry test affordable. *)
      (match scale with Common.Quick -> [ 11L; 222L ] | _ -> default_seeds)
  in
  let claims =
    List.map
      (fun seed -> Claims.of_fig10 (Fig10.run ~scale ~seed ?jobs ()))
      seeds
  in
  let pick f = stat (List.map f claims) in
  {
    n = List.length seeds;
    smt4_over_smt2 = pick (fun (c : Claims.t) -> c.smt4_over_smt2_pct);
    smt_over_csmt = pick (fun c -> c.smt_over_csmt_pct);
    sc3_over_csmt4 = pick (fun c -> c.scheme_2sc3_over_csmt4_pct);
    sc3_over_smt2 = pick (fun c -> c.scheme_2sc3_over_smt2_pct);
    sc3_below_smt4 = pick (fun c -> c.scheme_2sc3_below_smt4_pct);
  }

let render t =
  let line label paper s =
    Printf.sprintf "  %-22s %+6.1f%% +/- %4.1f  (paper %s)" label s.mean s.sd paper
  in
  String.concat "\n"
    [
      Printf.sprintf "Headline claims over %d seeds (mean +/- sd):" t.n;
      line "4T SMT vs 2T SMT:" "+61%" t.smt4_over_smt2;
      line "4T SMT vs 4T CSMT:" "+27%" t.smt_over_csmt;
      line "2SC3 vs 4T CSMT:" "+14%" t.sc3_over_csmt4;
      line "2SC3 vs 2T SMT:" "+45%" t.sc3_over_smt2;
      line "2SC3 vs 4T SMT:" "-11%" t.sc3_below_smt4;
      "";
    ]
