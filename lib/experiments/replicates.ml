type stat = { mean : float; sd : float }

type cell_ci = {
  ci_mix : string;
  ci_scheme : string;
  ci_mean : float;
  ci_sd : float;
  ci_half : float;  (* 95% half-width: 1.96 * sd / sqrt n; 0 when n < 2 *)
  ci_n : int;  (* replicates with a non-degraded value for this cell *)
}

type t = {
  n : int;
  seeds : int64 list;
  smt4_over_smt2 : stat;
  smt_over_csmt : stat;
  sc3_over_csmt4 : stat;
  sc3_over_smt2 : stat;
  sc3_below_smt4 : stat;
  cells : cell_ci list;  (* mix-major, per (mix, scheme) across seeds *)
}

let default_seeds = [ 11L; 222L; 3333L; 44444L; 555555L ]

(* Replicate seeds for -at-scale runs (100 seeds and beyond) derive
   from the master seed through the same scramble that derives row
   seeds, so any replicate count is reproducible from one number. *)
let derive_seeds ?(seed = Common.default_seed) n =
  List.init n (fun i -> Sweep.row_seed ~seed (Printf.sprintf "replicate-%d" i))

let stat xs =
  let arr = Array.of_list xs in
  { mean = Vliw_util.Stats.mean arr; sd = Vliw_util.Stats.stddev arr }

let cell_stats (grids : (int64 * Fig10.data) list) =
  match grids with
  | [] -> []
  | (_, first) :: _ ->
    List.concat
      (List.mapi
         (fun mix_row mix ->
           List.mapi
             (fun col scheme ->
               let vals =
                 List.filter_map
                   (fun (_, (d : Fig10.data)) ->
                     let v = d.grid.ipc.(mix_row).(col) in
                     if Float.is_nan v then None else Some v)
                   grids
               in
               let n = List.length vals in
               let arr = Array.of_list vals in
               let mean =
                 if n = 0 then Float.nan else Vliw_util.Stats.mean arr
               in
               let sd = if n < 2 then 0.0 else Vliw_util.Stats.stddev arr in
               let ci_half =
                 if n < 2 then 0.0 else 1.96 *. sd /. sqrt (float_of_int n)
               in
               {
                 ci_mix = mix;
                 ci_scheme = scheme;
                 ci_mean = mean;
                 ci_sd = sd;
                 ci_half;
                 ci_n = n;
               })
             first.grid.scheme_names)
         first.grid.mix_names)

(* Per-cell mean and 95% half-width as ledger gauges, so a replicated
   run's confidence intervals are durable and diffable. *)
let cell_gauges cells =
  List.concat_map
    (fun c ->
      if Float.is_nan c.ci_mean then []
      else
        [
          (Printf.sprintf "ipc.mean.%s.%s" c.ci_mix c.ci_scheme, c.ci_mean);
          (Printf.sprintf "ipc.ci95.%s.%s" c.ci_mix c.ci_scheme, c.ci_half);
        ])
    cells

let of_grids grids =
  let seeds = List.map fst grids in
  let claims = List.map (fun (_, d) -> Claims.of_fig10 d) grids in
  let pick f = stat (List.map f claims) in
  {
    n = List.length seeds;
    seeds;
    smt4_over_smt2 = pick (fun (c : Claims.t) -> c.smt4_over_smt2_pct);
    smt_over_csmt = pick (fun c -> c.smt_over_csmt_pct);
    sc3_over_csmt4 = pick (fun c -> c.scheme_2sc3_over_csmt4_pct);
    sc3_over_smt2 = pick (fun c -> c.scheme_2sc3_over_smt2_pct);
    sc3_below_smt4 = pick (fun c -> c.scheme_2sc3_below_smt4_pct);
    cells = cell_stats grids;
  }

let run ?(scale = Common.Default) ?seeds ?jobs ?fig10s () =
  let seeds =
    match seeds with
    | Some s -> s
    | None ->
      (* Quick scale is smoke-test territory: two replicates keep the
         full-registry test affordable. *)
      (match scale with Common.Quick -> [ 11L; 222L ] | _ -> default_seeds)
  in
  let grids =
    match fig10s with
    | Some exec -> exec ~seeds
    | None ->
      List.map (fun seed -> (seed, Fig10.run ~scale ~seed ?jobs ())) seeds
  in
  of_grids grids

let render t =
  let line label paper s =
    Printf.sprintf "  %-22s %+6.1f%% +/- %4.1f  (paper %s)" label s.mean s.sd paper
  in
  let ci_summary =
    let widths =
      List.filter_map
        (fun c -> if c.ci_n >= 2 then Some c.ci_half else None)
        t.cells
    in
    match widths with
    | [] -> []
    | ws ->
      let arr = Array.of_list ws in
      [
        Printf.sprintf
          "  per-cell 95%% CI half-width: mean %.4f, max %.4f IPC (%d cells)"
          (Vliw_util.Stats.mean arr)
          (Array.fold_left max neg_infinity arr)
          (List.length ws);
      ]
  in
  String.concat "\n"
    ([
       Printf.sprintf "Headline claims over %d seeds (mean +/- sd):" t.n;
       line "4T SMT vs 2T SMT:" "+61%" t.smt4_over_smt2;
       line "4T SMT vs 4T CSMT:" "+27%" t.smt_over_csmt;
       line "2SC3 vs 4T CSMT:" "+14%" t.sc3_over_csmt4;
       line "2SC3 vs 2T SMT:" "+45%" t.sc3_over_smt2;
       line "2SC3 vs 4T SMT:" "-11%" t.sc3_below_smt4;
     ]
    @ ci_summary @ [ "" ])
