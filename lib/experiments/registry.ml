(* First-class experiment registry.

   Every paper artifact and extension study is registered here once;
   the CLI (`vliwsim exp`) and the bench harness both derive their
   dispatch from this list instead of maintaining parallel hand-written
   sequences.

   An entry existentially packages the artifact type produced by its
   [run] function together with the matching [render] (and optional
   [csv]) functions, so adding an experiment is a one-line change and
   type errors stay local to the entry.

   A [ctx] carries the shared execution parameters plus the lazily
   forced Figure 10 grid: fig6, fig11, fig12, claims and fig10 itself
   all read the same 9-mix x 16-scheme sweep, which is only run once
   per context no matter how many of them execute. *)

type ctx = {
  scale : Common.scale;
  seed : int64;
  jobs : int;  (* worker domains for sweep cells; 0 = auto, 1 = serial *)
  progress : (Sweep.progress -> unit) option;
  telemetry : bool;  (* attach per-cell counter registries to the sweep *)
  max_retries : int;  (* per-cell retry budget before a cell degrades *)
  checkpoint : string option;  (* journal path for the shared fig10 sweep *)
  resume : bool;  (* restore journaled fig10 cells instead of re-running *)
  log : string -> unit;  (* diagnostic sink (journal warnings etc.) *)
  on_event : (Sweep.event -> unit) option;  (* structured progress stream *)
  replicate_seeds : int64 list option;  (* seed list for `exp replicates` *)
  replicate_exec :
    (seeds:int64 list -> (int64 * Fig10.data) list) option;
      (* distributed per-seed fig10 executor for replicates *)
  fig10 : Fig10.data Lazy.t;
}

(* The checkpoint journal is wired to the shared fig10 sweep only: it is
   the expensive artifact every downstream figure reads, and a single
   journal path cannot serve two sweeps with different configurations
   (fig4's 3-scheme grid would clobber fig10's 16-scheme one). The retry
   budget applies to every sweep-backed experiment. *)
(* [grid_exec] swaps the shared fig10 sweep's execution engine: when
   given (the distributed coordinator, injected by the CLI for
   `exp --workers N`), the lazy artifact is folded from its merged
   cells instead of running Sweep.run_cells in-process. The executor
   owns fault tolerance and checkpointing; bit-identical cells give a
   bit-identical artifact. *)
let make_ctx ?(scale = Common.Default) ?(seed = Common.default_seed) ?(jobs = 1)
    ?progress ?(telemetry = false) ?(max_retries = 0) ?checkpoint
    ?(resume = false) ?(log = fun (_ : string) -> ()) ?on_event
    ?replicate_seeds ?replicate_exec ?grid_exec () =
  {
    scale;
    seed;
    jobs;
    progress;
    telemetry;
    max_retries;
    checkpoint;
    resume;
    log;
    on_event;
    replicate_seeds;
    replicate_exec;
    fig10 =
      (match grid_exec with
      | Some exec ->
        lazy
          (let scheme_names, mix_names, cells =
             exec ~scheme_names:Fig10.scheme_names
           in
           Fig10.of_cells ~scheme_names ~mix_names cells)
      | None ->
        lazy
          (Fig10.run ~scale ~seed ~jobs ?progress ~telemetry ~max_retries
             ?checkpoint ~resume ~log ?on_event ()));
  }

type csv = string list * string list list

(* What an experiment hands the run ledger. Experiments whose grid is
   not the shared fig10 sweep (e.g. "adaptive") export their own cells
   here, so `vliwsim exp` can record and `vliwsim profile` can render
   them; [li_policy] names the controller policy of adaptive columns —
   part of the ledger fingerprint, so an adaptive run never collides
   with a static one. *)
type ledger_info = {
  li_cells : Sweep.cell array;  (* mix-major *)
  li_scheme_names : string list;
  li_mix_names : string list;
  li_gauges : (string * float) list;
  li_policy : string;  (* "static" for plain sweeps *)
}

type t =
  | E : {
      id : string;
      title : string;
      expensive : bool;
          (* excluded from `exp all` / bench regeneration (e.g.
             replicates re-runs the whole fig10 grid per seed) *)
      run : ctx -> 'a;
      render : 'a -> string;
      csv : ('a -> csv) option;
      info : ('a -> ledger_info) option;
    } -> t

let id (E e) = e.id
let title (E e) = e.title
let expensive (E e) = e.expensive
let has_csv (E e) = Option.is_some e.csv

(* Run an entry and return its rendered text plus CSV data when the
   experiment exports any. *)
let run_entry ctx (E e) =
  let artifact = e.run ctx in
  (e.render artifact, Option.map (fun f -> f artifact) e.csv)

(* Like [run_entry], also extracting the experiment's ledger export. *)
let run_entry_full ctx (E e) =
  let artifact = e.run ctx in
  ( e.render artifact,
    Option.map (fun f -> f artifact) e.csv,
    Option.map (fun f -> f artifact) e.info )

let entry ?(expensive = false) ?csv ?info id title run render =
  E { id; title; expensive; run; render; csv; info }

let all : t list =
  [
    entry "table1" "Table 1"
      (fun ctx -> Table1.run ~scale:ctx.scale ~seed:ctx.seed ())
      Table1.render ~csv:Table1.csv_rows;
    entry "table2" "Table 2" (fun _ -> ()) (fun () -> Table2.render ());
    entry "fig4" "Figure 4"
      (fun ctx ->
        Fig4.run ~scale:ctx.scale ~seed:ctx.seed ~jobs:ctx.jobs
          ?progress:ctx.progress ~max_retries:ctx.max_retries ())
      Fig4.render;
    entry "fig5" "Figure 5" (fun _ -> Fig5.run ()) Fig5.render ~csv:Fig5.csv_rows;
    entry "fig6" "Figure 6"
      (fun ctx -> Fig6.of_grid (Lazy.force ctx.fig10).grid)
      Fig6.render;
    entry "fig9" "Figure 9" (fun _ -> Fig9.run ()) Fig9.render ~csv:Fig9.csv_rows;
    entry "fig10" "Figure 10"
      (fun ctx -> Lazy.force ctx.fig10)
      Fig10.render
      ~csv:(fun (d : Fig10.data) -> Common.grid_csv d.grid);
    entry "fig11" "Figure 11"
      (fun ctx -> Fig11.of_fig10 (Lazy.force ctx.fig10))
      Fig11.render ~csv:Fig11.csv_rows;
    entry "fig12" "Figure 12"
      (fun ctx -> Fig12.of_fig10 (Lazy.force ctx.fig10))
      Fig12.render ~csv:Fig12.csv_rows;
    entry "claims" "Headline claims"
      (fun ctx -> Claims.of_fig10 (Lazy.force ctx.fig10))
      Claims.render;
    entry "ablations" "Ablations"
      (fun ctx -> Ablations.run ~scale:ctx.scale ~seed:ctx.seed ())
      Ablations.render;
    entry "ext8" "Extension: 8 threads"
      (fun ctx -> Ext8.run ~scale:ctx.scale ~seed:ctx.seed ())
      Ext8.render;
    entry "baselines" "Baselines (IMT/BMT vs merging)"
      (fun ctx -> Baselines.run ~scale:ctx.scale ~seed:ctx.seed ())
      Baselines.render;
    entry "sensitivity" "Sensitivity"
      (fun ctx -> Sensitivity.all ~scale:ctx.scale ~seed:ctx.seed ())
      Sensitivity.render_all;
    entry "compiler" "Compiler: block vs trace scheduling"
      (fun ctx -> Compiler_cmp.run ~scale:ctx.scale ~seed:ctx.seed ())
      Compiler_cmp.render;
    entry "waste" "Waste decomposition"
      (fun ctx -> Waste.run ~scale:ctx.scale ~seed:ctx.seed ~mix:"LLHH" ())
      (Waste.render "LLHH");
    entry "speedup" "Weighted speedup and fairness"
      (fun ctx -> Speedup.run ~scale:ctx.scale ~seed:ctx.seed ~mix:"LLHH" ())
      (Speedup.render "LLHH");
    entry "replicates" "Headline claims across seeds" ~expensive:true
      ~info:(fun (t : Replicates.t) ->
        {
          (* the grid cells live in the per-seed records of the
             executor; the summary record carries the statistics *)
          li_cells = [||];
          li_scheme_names = Fig10.scheme_names;
          li_mix_names = Vliw_workloads.Mixes.names;
          li_gauges =
            (("replicates.n", float_of_int t.n) :: Replicates.cell_gauges t.cells);
          li_policy = "static";
        })
      (fun ctx ->
        Replicates.run ~scale:ctx.scale ?seeds:ctx.replicate_seeds
          ~jobs:ctx.jobs ?fig10s:ctx.replicate_exec ())
      Replicates.render;
    (* Expensive: 7 columns x 9 mixes with telemetry, on top of the
       standard set — run explicitly (`exp adaptive`). The checkpoint
       path is derived from the shared one: the column set differs from
       fig10's, so the journals must never share a file. *)
    entry "adaptive" "Adaptive merging (per-timeslice controller)"
      ~expensive:true
      ~csv:Adaptive.csv_rows
      ~info:(fun (d : Adaptive.data) ->
        {
          li_cells = d.cells;
          li_scheme_names = d.grid.scheme_names;
          li_mix_names = d.grid.mix_names;
          li_gauges = Adaptive.gauges d;
          li_policy = d.policy;
        })
      (fun ctx ->
        Adaptive.run ~scale:ctx.scale ~seed:ctx.seed ~jobs:ctx.jobs
          ?progress:ctx.progress ~max_retries:ctx.max_retries
          ?checkpoint:(Option.map (fun p -> p ^ ".adaptive") ctx.checkpoint)
          ~resume:ctx.resume ~log:ctx.log ?on_event:ctx.on_event ())
      Adaptive.render;
  ]

let ids = List.map id all

let find wanted = List.find_opt (fun (E e) -> e.id = wanted) all

let find_exn wanted =
  match find wanted with
  | Some e -> e
  | None -> invalid_arg ("registry: unknown experiment " ^ wanted)

(* The entries regenerated by `exp all` and the bench harness. *)
let standard = List.filter (fun e -> not (expensive e)) all
