(** Figure 10: per-mix IPC for every merging scheme.

    The paper groups schemes whose performance differs by less than 1%
    (e.g. 3CCC with C4); we simulate every scheme individually, report
    the paper's groups as member averages and expose the within-group
    spread so the grouping claim itself is checkable. *)

type data = {
  grid : Common.grid;  (** All 4-thread schemes plus 1S. *)
  groups : (string * string list) list;  (** Paper legend groups. *)
  cells : Sweep.cell array;
      (** Raw sweep cells (mix-major): timings, worker ids and counter
          snapshots when the run requested telemetry. *)
}

val scheme_names : string list
(** The fig10 scheme set: every catalog scheme except the
    single-threaded "ST" baseline, in catalog order. *)

val of_cells :
  scheme_names:string list -> mix_names:string list -> Sweep.cell array -> data
(** Build the artifact from externally computed mix-major cells (a
    distributed sweep's merged grid); bit-equal inputs give bit-equal
    artifacts to {!run}'s. *)

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?progress:(Sweep.progress -> unit) ->
  ?telemetry:bool ->
  ?max_retries:int ->
  ?cell_timeout_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  ?on_event:(Sweep.event -> unit) ->
  unit ->
  data
(** The fault-tolerance knobs ([max_retries], [cell_timeout_s],
    [checkpoint], [resume], [log]) and the [on_event] progress stream
    are passed to {!Sweep.run_cells} verbatim; see its documentation. *)

val group_ipc : data -> string -> float array
(** Per-mix IPC of a group (average over members). *)

val group_average : data -> string -> float

val group_spread : data -> string -> float
(** Maximum relative IPC difference between group members on any mix —
    the paper reports < 1%. *)

val scheme_average : data -> string -> float

val render : data -> string
