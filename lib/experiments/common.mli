(** Shared experiment infrastructure: scales, seeds, and the simulation
    grid all performance figures draw from. *)

type scale = Quick | Default | Full

val schedule_of_scale : scale -> Vliw_sim.Multitask.schedule
(** Quick: unit-test sized. Default: seconds per simulation, stable
    rates. Full: the paper's parameters scaled to minutes per
    simulation. *)

val scale_name : scale -> string
(** "quick" / "default" / "full" — the CLI spelling, also the spelling
    checkpoint journals record. *)

val scale_of_name : string -> scale option
(** Inverse of {!scale_name}. *)

val default_seed : int64

val ipc_string : ?decimals:int -> float -> string
(** Fixed-point rendering of an IPC value; [nan] (a degraded sweep
    cell) renders as ["n/a"]. [decimals] defaults to 4. *)

val single_thread_ipc :
  ?scale:scale -> ?seed:int64 -> perfect:bool -> Vliw_compiler.Profile.t -> float
(** Single-thread IPC of one benchmark on the default machine. *)

type grid = {
  scheme_names : string list;
  mix_names : string list;
  ipc : float array array;  (** [ipc.(mix).(scheme)]. *)
  index : (string, int) Hashtbl.t;
      (** Scheme name -> column, precomputed at construction. *)
}

val make_grid :
  scheme_names:string list ->
  mix_names:string list ->
  ipc:float array array ->
  grid
(** The only grid constructor; builds the scheme-column lookup once.
    Grids are produced by {!Sweep.run} — the (mix x scheme) execution
    engine that used to live here as [run_grid]. *)

val scheme_index : grid -> string -> int
(** Column of a scheme (O(1)); raises [Invalid_argument] if absent. *)

val grid_column : grid -> string -> float array
(** IPC across mixes for one scheme. *)

val grid_average : grid -> string -> float
(** Mean IPC across mixes for one scheme. *)

val grid_mean : grid -> float
(** Mean IPC over every non-nan cell of the grid (degraded cells are
    skipped); nan when no cell is valid. *)

val grid_csv : grid -> string list * string list list
(** CSV header and rows (mix per row, scheme per column). *)
