type data = { per_mix : (string * float) list; average : float }

let of_grid (grid : Common.grid) =
  let smt = Common.grid_column grid "3SSS" in
  let csmt = Common.grid_column grid "3CCC" in
  let per_mix =
    List.mapi
      (fun i mix -> (mix, Vliw_util.Stats.pct_diff smt.(i) csmt.(i)))
      grid.mix_names
  in
  let average =
    Vliw_util.Stats.pct_diff (Vliw_util.Stats.mean smt) (Vliw_util.Stats.mean csmt)
  in
  { per_mix; average }

let run ?scale ?seed ?jobs ?progress () =
  of_grid
    (Sweep.run ?scale ?seed ~scheme_names:[ "3SSS"; "3CCC" ] ?jobs ?progress ())

let render d =
  let chart =
    Vliw_util.Ascii_chart.bar_chart ~unit_label:"%"
      (d.per_mix @ [ ("Average", d.average) ])
  in
  Printf.sprintf
    "Figure 6: SMT performance advantage over CSMT (4 threads)\n%s\n\
     (paper: 27%% average, up to 58%% on LLHH)\n"
    chart
