(** First-class registry of every paper artifact and extension study.

    The CLI and the bench harness both derive their dispatch from
    {!all}; adding an experiment means adding one entry here. *)

type ctx = {
  scale : Common.scale;
  seed : int64;
  jobs : int;  (** Worker domains for sweep cells; 0 = auto. *)
  progress : (Sweep.progress -> unit) option;
  telemetry : bool;
      (** Attach per-cell counter registries to the shared sweep
          (observation-only; results are unchanged). *)
  max_retries : int;
      (** Per-cell retry budget before a sweep cell degrades to "n/a";
          applies to every sweep-backed experiment. *)
  checkpoint : string option;
      (** Journal path for the shared fig10 sweep (only that sweep: a
          single journal cannot serve differently-shaped grids). *)
  resume : bool;
      (** Restore journaled fig10 cells instead of re-simulating. *)
  log : string -> unit;  (** Diagnostic sink (journal warnings etc.). *)
  on_event : (Sweep.event -> unit) option;
      (** Structured progress stream, forwarded to the shared fig10
          sweep (see {!Sweep.event} for domain-safety requirements). *)
  replicate_seeds : int64 list option;
      (** Seed list override for the replicates experiment ([None] =
          the scale's default list; see {!Replicates.derive_seeds} for
          -at-scale lists). *)
  replicate_exec : (seeds:int64 list -> (int64 * Fig10.data) list) option;
      (** Per-seed fig10 executor for replicates (the distributed
          coordinator plugs in here); [None] = in-process. *)
  fig10 : Fig10.data Lazy.t;
      (** Forced at most once per ctx; shared by fig6, fig10, fig11,
          fig12 and claims. *)
}

val make_ctx :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?progress:(Sweep.progress -> unit) ->
  ?telemetry:bool ->
  ?max_retries:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  ?on_event:(Sweep.event -> unit) ->
  ?replicate_seeds:int64 list ->
  ?replicate_exec:(seeds:int64 list -> (int64 * Fig10.data) list) ->
  ?grid_exec:
    (scheme_names:string list -> string list * string list * Sweep.cell array) ->
  unit ->
  ctx
(** Defaults: [max_retries = 0], no checkpoint, [resume = false],
    silent [log]. [grid_exec] replaces the shared fig10 sweep's
    execution engine (`exp --workers N` injects the distributed
    coordinator): it receives the fig10 scheme set and must return
    resolved names plus mix-major cells, exactly like
    {!Sweep.run_cells}; the lazy artifact is folded from them with
    {!Fig10.of_cells}. *)

type csv = string list * string list list

type ledger_info = {
  li_cells : Sweep.cell array;  (** Mix-major, like {!Sweep.run_cells}. *)
  li_scheme_names : string list;
  li_mix_names : string list;
  li_gauges : (string * float) list;
  li_policy : string;  (** ["static"] for plain sweeps. *)
}
(** What an experiment hands the run ledger. Experiments whose grid is
    not the shared fig10 sweep (e.g. ["adaptive"]) export their cells
    here so the CLI can record/profile them; [li_policy] joins the
    ledger fingerprint, keeping adaptive runs distinct from static
    ones. *)

type t =
  | E : {
      id : string;
      title : string;
      expensive : bool;
      run : ctx -> 'a;
      render : 'a -> string;
      csv : ('a -> csv) option;
      info : ('a -> ledger_info) option;
    } -> t
      (** An experiment record: the artifact type produced by [run] is
          existentially bound to the matching [render]/[csv]/[info]. *)

val id : t -> string
val title : t -> string

val expensive : t -> bool
(** Excluded from `exp all` and bench regeneration (e.g. replicates,
    which re-runs the whole fig10 grid once per seed). *)

val has_csv : t -> bool

val run_entry : ctx -> t -> string * csv option
(** Run an experiment; returns its rendered text and, when the
    experiment exports data, the CSV header and rows. *)

val run_entry_full : ctx -> t -> string * csv option * ledger_info option
(** Like {!run_entry}, also extracting the experiment's ledger export
    when it defines one. *)

val all : t list
(** Every registered experiment, in regeneration order. *)

val standard : t list
(** [all] minus the expensive entries — what `exp all` regenerates. *)

val ids : string list

val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument on unknown ids. *)
