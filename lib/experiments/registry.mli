(** First-class registry of every paper artifact and extension study.

    The CLI and the bench harness both derive their dispatch from
    {!all}; adding an experiment means adding one entry here. *)

type ctx = {
  scale : Common.scale;
  seed : int64;
  jobs : int;  (** Worker domains for sweep cells; 0 = auto. *)
  progress : (Sweep.progress -> unit) option;
  telemetry : bool;
      (** Attach per-cell counter registries to the shared sweep
          (observation-only; results are unchanged). *)
  max_retries : int;
      (** Per-cell retry budget before a sweep cell degrades to "n/a";
          applies to every sweep-backed experiment. *)
  checkpoint : string option;
      (** Journal path for the shared fig10 sweep (only that sweep: a
          single journal cannot serve differently-shaped grids). *)
  resume : bool;
      (** Restore journaled fig10 cells instead of re-simulating. *)
  log : string -> unit;  (** Diagnostic sink (journal warnings etc.). *)
  on_event : (Sweep.event -> unit) option;
      (** Structured progress stream, forwarded to the shared fig10
          sweep (see {!Sweep.event} for domain-safety requirements). *)
  fig10 : Fig10.data Lazy.t;
      (** Forced at most once per ctx; shared by fig6, fig10, fig11,
          fig12 and claims. *)
}

val make_ctx :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?progress:(Sweep.progress -> unit) ->
  ?telemetry:bool ->
  ?max_retries:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  ?on_event:(Sweep.event -> unit) ->
  unit ->
  ctx
(** Defaults: [max_retries = 0], no checkpoint, [resume = false],
    silent [log]. *)

type csv = string list * string list list

type t =
  | E : {
      id : string;
      title : string;
      expensive : bool;
      run : ctx -> 'a;
      render : 'a -> string;
      csv : ('a -> csv) option;
    } -> t
      (** An experiment record: the artifact type produced by [run] is
          existentially bound to the matching [render]/[csv]. *)

val id : t -> string
val title : t -> string

val expensive : t -> bool
(** Excluded from `exp all` and bench regeneration (e.g. replicates,
    which re-runs the whole fig10 grid once per seed). *)

val has_csv : t -> bool

val run_entry : ctx -> t -> string * csv option
(** Run an experiment; returns its rendered text and, when the
    experiment exports data, the CSV header and rows. *)

val all : t list
(** Every registered experiment, in regeneration order. *)

val standard : t list
(** [all] minus the expensive entries — what `exp all` regenerates. *)

val ids : string list

val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument on unknown ids. *)
