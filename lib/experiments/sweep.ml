(* Declarative (mix x scheme) sweep engine.

   This is the execution core that used to live inline in
   [Common.run_grid]: compile each mix's programs once, then simulate
   every (mix, scheme) cell. Cells are independent, so they are
   dispatched through [Vliw_util.Pool] and run on as many domains as
   requested.

   Determinism is normative: the grid produced with [~jobs:8] is
   bit-identical to [~jobs:1]. Two rules guarantee it:

   - Programs are compiled in the parent domain, per mix, with the same
     RNG derivation regardless of [jobs]; cells only read them.
   - Each mix row gets an independently derived simulation seed
     (SplitMix64 scramble of the master seed and the mix name), fixed
     before any cell runs. All scheme columns within a row share the
     row seed on purpose: schemes are compared on identical workloads
     (same programs, same memory behavior), which is what makes the
     comparison controlled and keeps the parallel/serial scheme
     equivalences (3CCC = C4, 2SC3 = 3SCC) bit-exact in simulation.

   Each cell records its own wall-clock time, and an optional progress
   callback (serialized across workers) makes long sweeps observable. *)

type cell = {
  mix : string;
  scheme : string;
  ipc : float;
  elapsed_s : float;  (* wall-clock seconds spent simulating this cell *)
  started_s : float;  (* start offset from the sweep epoch (wall clock) *)
  worker : int;  (* pool worker that simulated the cell *)
  telemetry : Vliw_telemetry.Counters.snapshot option;
}

type progress = { completed : int; total : int; last : cell }

let default_scheme_names () =
  List.map
    (fun (e : Vliw_merge.Catalog.entry) -> e.name)
    Vliw_merge.Catalog.four_thread

(* FNV-1a over the mix name, scrambled through one SplitMix64 step, so
   every row's simulation seed is statistically independent of the
   master seed and of the other rows. *)
let row_seed ~seed mix_name =
  let h =
    String.fold_left
      (fun acc c ->
        Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001B3L)
      0xCBF29CE484222325L mix_name
  in
  Vliw_util.Rng.next_int64 (Vliw_util.Rng.create (Int64.logxor seed h))

let compile_mix ~machine ~seed mix_name =
  let mix = Vliw_workloads.Mixes.find_exn mix_name in
  (* Same derivation as the historical run_grid: compile once per mix,
     every scheme sees identical programs. *)
  let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
  List.map
    (fun p ->
      Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng) machine p)
    mix.members

let run_cells ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?scheme_names ?mix_names ?(jobs = 1) ?progress ?(telemetry = false) () =
  let scheme_names =
    match scheme_names with Some names -> names | None -> default_scheme_names ()
  in
  let mix_names =
    match mix_names with Some names -> names | None -> Vliw_workloads.Mixes.names
  in
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  (* Resolve schemes and compile programs up front, in the parent
     domain: cells must not race on catalog lookups or compilation. *)
  let entries =
    List.map (fun name -> Vliw_merge.Catalog.find_exn name) scheme_names
  in
  let rows =
    List.map
      (fun mix_name ->
        (mix_name, row_seed ~seed mix_name, compile_mix ~machine ~seed mix_name))
      mix_names
  in
  let epoch = Unix.gettimeofday () in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun (mix_name, row_seed, programs) ->
           List.map
             (fun (entry : Vliw_merge.Catalog.entry) ~worker ->
               let t0 = Unix.gettimeofday () in
               let config = Vliw_sim.Config.make ~machine entry.scheme in
               let counters =
                 if telemetry then Some (Vliw_telemetry.Counters.create ())
                 else None
               in
               let metrics =
                 Vliw_sim.Multitask.run_programs config ~seed:row_seed ~schedule
                   ?counters programs
               in
               {
                 mix = mix_name;
                 scheme = entry.name;
                 ipc = Vliw_sim.Metrics.ipc metrics;
                 elapsed_s = Unix.gettimeofday () -. t0;
                 started_s = t0 -. epoch;
                 worker;
                 telemetry = Option.map Vliw_telemetry.Counters.snapshot counters;
               })
             entries)
         rows)
  in
  let on_result =
    match progress with
    | None -> None
    | Some f ->
      let total = Array.length tasks in
      let completed = ref 0 in
      (* The pool serializes this callback across workers. *)
      Some
        (fun _i cell ->
          incr completed;
          f { completed = !completed; total; last = cell })
  in
  let cells = Vliw_util.Pool.run_with_worker ~jobs ?on_result tasks in
  (scheme_names, mix_names, cells)

let grid_of_cells ~scheme_names ~mix_names cells =
  let n_schemes = List.length scheme_names in
  let ipc =
    Array.init (List.length mix_names) (fun i ->
        Array.init n_schemes (fun j -> cells.((i * n_schemes) + j).ipc))
  in
  Common.make_grid ~scheme_names ~mix_names ~ipc

let run ?scale ?seed ?scheme_names ?mix_names ?jobs ?progress () =
  let scheme_names, mix_names, cells =
    run_cells ?scale ?seed ?scheme_names ?mix_names ?jobs ?progress ()
  in
  grid_of_cells ~scheme_names ~mix_names cells

let total_elapsed_s cells =
  Array.fold_left (fun acc c -> acc +. c.elapsed_s) 0.0 cells

let merged_telemetry cells =
  Array.fold_left
    (fun acc c ->
      match c.telemetry with
      | None -> acc
      | Some s -> Vliw_telemetry.Counters.merge acc s)
    Vliw_telemetry.Counters.empty cells

let chrome_trace ?(process_name = "vliwsim sweep") cells =
  let spans =
    Array.to_list cells
    |> List.map (fun c ->
           {
             Vliw_telemetry.Chrome_trace.lane = c.worker;
             name = Printf.sprintf "%s/%s" c.mix c.scheme;
             start_us = c.started_s *. 1e6;
             dur_us = c.elapsed_s *. 1e6;
             args =
               [
                 ("mix", c.mix);
                 ("scheme", c.scheme);
                 ("ipc", Printf.sprintf "%.4f" c.ipc);
               ];
           })
  in
  let lane_names =
    Array.fold_left (fun acc c -> max acc c.worker) 0 cells |> fun hi ->
    List.init (hi + 1) (fun w -> (w, Printf.sprintf "worker %d" w))
  in
  Vliw_telemetry.Chrome_trace.of_spans ~process_name ~lane_names spans

let telemetry_csv cells =
  let rows =
    Array.to_list cells
    |> List.concat_map (fun c ->
           match c.telemetry with
           | None -> []
           | Some s ->
             List.map
               (fun (name, v) -> [ c.mix; c.scheme; name; string_of_int v ])
               s.Vliw_telemetry.Counters.counters)
  in
  ([ "mix"; "scheme"; "counter"; "value" ], rows)
