(* Declarative (mix x scheme) sweep engine.

   This is the execution core that used to live inline in
   [Common.run_grid]: compile each mix's programs once, then simulate
   every (mix, scheme) cell. Cells are independent, so they are
   dispatched through [Vliw_util.Pool] and run on as many domains as
   requested.

   Determinism is normative: the grid produced with [~jobs:8] is
   bit-identical to [~jobs:1]. Two rules guarantee it:

   - Programs are compiled in the parent domain, per mix, with the same
     RNG derivation regardless of [jobs]; cells only read them.
   - Each mix row gets an independently derived simulation seed
     (SplitMix64 scramble of the master seed and the mix name), fixed
     before any cell runs. All scheme columns within a row share the
     row seed on purpose: schemes are compared on identical workloads
     (same programs, same memory behavior), which is what makes the
     comparison controlled and keeps the parallel/serial scheme
     equivalences (3CCC = C4, 2SC3 = 3SCC) bit-exact in simulation.

   Fault tolerance (both opt-in, off by default):

   - A cell whose simulation raises (or trips [inject_failure], or
     exceeds [cell_timeout_s]) is retried up to [max_retries] times,
     then recorded as a degraded cell — [ipc = nan], [error = Some _],
     rendered as "n/a" — instead of aborting the sweep and discarding
     every completed cell. Retry/degradation counts ride the telemetry
     counters ([sweep.retries] etc.) and the [attempts]/[error] fields.
     Retries are harmless to determinism: a cell simulation is a pure
     function of its row seed, so a retried cell produces the identical
     result.

   - With [checkpoint], every completed cell is journaled (atomic
     temp+rename via [Checkpoint]); with [resume], journaled cells are
     restored — bit-identical, the journal stores raw IPC bits — and
     only the missing cells simulate. A journal whose configuration
     header does not match the requested sweep is ignored.

   Each cell records its own wall-clock time, and an optional progress
   callback (serialized across workers) makes long sweeps observable. *)

module Counters = Vliw_telemetry.Counters
module Report = Vliw_telemetry.Report

(* A sweep column: what one grid column simulates. The classic sweep is
   one static scheme per column; an adaptive column carries a controller
   factory instead, and the cell's scheme name is the column's display
   name ("adaptive", "oracle", ...). The factory is invoked once per
   simulation attempt — controllers are stateful, and a retried cell
   must start from a pristine one to stay a pure function of its row
   seed. *)
type column = {
  col_name : string;  (* display/journal name; must be unique per sweep *)
  col_scheme : Vliw_merge.Scheme.t;  (* initial (or only) scheme *)
  col_policy : string;  (* "static" or a Controller.policy_to_string *)
  col_controller : (unit -> Vliw_sim.Controller.t) option;
}

let static_column (e : Vliw_merge.Catalog.entry) =
  {
    col_name = e.name;
    col_scheme = e.scheme;
    col_policy = "static";
    col_controller = None;
  }

type cell = {
  mix : string;
  scheme : string;
  ipc : float;  (* nan for a degraded cell *)
  elapsed_s : float;  (* wall-clock seconds spent simulating this cell *)
  started_s : float;  (* start offset from the sweep epoch (wall clock) *)
  worker : int;  (* pool worker that simulated the cell *)
  telemetry : Counters.snapshot option;
  attempts : int;  (* simulation attempts; 0 for a cell restored from
                      a checkpoint without re-simulation *)
  error : string option;  (* Some _ iff the cell is degraded *)
}

type progress = { completed : int; total : int; last : cell }

(* Live structured progress stream. Cell_started / Cell_retried /
   Cell_degraded fire inside worker domains; Sweep_started,
   Cell_finished (serialized through the pool's on_result) and
   Sweep_finished fire in the parent. A consumer must therefore be
   domain-safe — [json_logger] serializes writes through a mutex. *)
type event =
  | Sweep_started of { total : int; jobs : int; scale : string; seed : int64 }
  | Cell_started of { mix : string; scheme : string; worker : int }
  | Cell_retried of {
      mix : string;
      scheme : string;
      attempt : int;  (* the attempt that just failed, 1-based *)
      error : string;
    }
  | Cell_degraded of {
      mix : string;
      scheme : string;
      attempts : int;
      error : string;
    }
  | Cell_finished of {
      cell : cell;
      completed : int;
      total : int;
      eta_s : float;  (* nan until one timed cell has completed *)
    }
  | Sweep_finished of { total : int; degraded : int; wall_s : float }

let json_of_event ev =
  let module J = Vliw_util.Json in
  let num v = J.Num v in
  let base name fields =
    J.Obj
      (("ev", J.Str name)
      :: ("ts", num (Unix.gettimeofday ()))
      :: fields)
  in
  match ev with
  | Sweep_started { total; jobs; scale; seed } ->
    base "sweep_started"
      [
        ("total", num (float_of_int total));
        ("jobs", num (float_of_int jobs));
        ("scale", J.Str scale);
        ("seed", J.Str (Printf.sprintf "0x%Lx" seed));
      ]
  | Cell_started { mix; scheme; worker } ->
    base "cell_started"
      [
        ("mix", J.Str mix);
        ("scheme", J.Str scheme);
        ("worker", num (float_of_int worker));
      ]
  | Cell_retried { mix; scheme; attempt; error } ->
    base "cell_retried"
      [
        ("mix", J.Str mix);
        ("scheme", J.Str scheme);
        ("attempt", num (float_of_int attempt));
        ("error", J.Str error);
      ]
  | Cell_degraded { mix; scheme; attempts; error } ->
    base "cell_degraded"
      [
        ("mix", J.Str mix);
        ("scheme", J.Str scheme);
        ("attempts", num (float_of_int attempts));
        ("error", J.Str error);
      ]
  | Cell_finished { cell; completed; total; eta_s } ->
    base "cell_finished"
      [
        ("mix", J.Str cell.mix);
        ("scheme", J.Str cell.scheme);
        ("ipc", num cell.ipc);
        ("elapsed_s", num cell.elapsed_s);
        ("worker", num (float_of_int cell.worker));
        ("attempts", num (float_of_int cell.attempts));
        ("degraded", J.Bool (cell.error <> None));
        ("completed", num (float_of_int completed));
        ("total", num (float_of_int total));
        ("eta_s", num eta_s);
      ]
  | Sweep_finished { total; degraded; wall_s } ->
    base "sweep_finished"
      [
        ("total", num (float_of_int total));
        ("degraded", num (float_of_int degraded));
        ("wall_s", num wall_s);
      ]

let json_logger oc =
  let m = Mutex.create () in
  fun ev ->
    let line = Vliw_util.Json.to_string (json_of_event ev) in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

exception Cell_timeout of { elapsed_s : float; limit_s : float }

let () =
  Printexc.register_printer (function
    | Cell_timeout { elapsed_s; limit_s } ->
      Some
        (Printf.sprintf "Sweep.Cell_timeout (%.2fs > limit %.2fs)" elapsed_s
           limit_s)
    | _ -> None)

(* Deterministic fault injection for the fault-tolerance tests: when
   set, a cell attempt at (row, col) raises before simulating iff the
   hook returns [true]. Called once per attempt, possibly from a worker
   domain — install it before the sweep starts and make it domain-safe
   if it is stateful. *)
let inject_failure : (row:int -> col:int -> bool) option ref = ref None

let degraded cells =
  Array.to_list cells |> List.filter (fun c -> c.error <> None)

let total_retries cells =
  Array.fold_left (fun acc c -> acc + max 0 (c.attempts - 1)) 0 cells

let default_scheme_names () =
  List.map
    (fun (e : Vliw_merge.Catalog.entry) -> e.name)
    Vliw_merge.Catalog.four_thread

(* FNV-1a over the mix name, scrambled through one SplitMix64 step, so
   every row's simulation seed is statistically independent of the
   master seed and of the other rows. *)
let row_seed ~seed mix_name =
  let h =
    String.fold_left
      (fun acc c ->
        Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001B3L)
      0xCBF29CE484222325L mix_name
  in
  Vliw_util.Rng.next_int64 (Vliw_util.Rng.create (Int64.logxor seed h))

let compile_mix ~machine ~seed mix_name =
  let mix = Vliw_workloads.Mixes.find_exn mix_name in
  (* Same derivation as the historical run_grid: compile once per mix,
     every scheme sees identical programs. *)
  let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
  List.map
    (fun p ->
      Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng) machine p)
    mix.members

(* A mix row prepared outside a grid: the same derivations [run_cells]
   performs per row, packaged so a single cell can be simulated on its
   own (and the compilation shared across many cells of the same row).
   Bit-equality with the in-grid cell is the load-bearing property —
   both paths must call the same compile/seed/config code. *)
type prepared_row = {
  pr_mix : string;
  pr_row_seed : int64;
  pr_programs : Vliw_compiler.Program.t list;
  pr_schedule : Vliw_sim.Multitask.schedule;
  pr_machine : Vliw_isa.Machine.t;
}

let prepare_row ?(scale = Common.Default) ?(seed = Common.default_seed)
    mix_name =
  let machine = Vliw_isa.Machine.default in
  {
    pr_mix = mix_name;
    pr_row_seed = row_seed ~seed mix_name;
    pr_programs = compile_mix ~machine ~seed mix_name;
    pr_schedule = Common.schedule_of_scale scale;
    pr_machine = machine;
  }

let prepared_mix pr = pr.pr_mix

let simulate_prepared ?tapes pr (column : column) =
  let config = Vliw_sim.Config.make ~machine:pr.pr_machine column.col_scheme in
  let controller = Option.map (fun mk -> mk ()) column.col_controller in
  let metrics =
    Vliw_sim.Multitask.run_programs config ~seed:pr.pr_row_seed
      ~schedule:pr.pr_schedule ?controller ?tapes pr.pr_programs
  in
  Vliw_sim.Metrics.ipc metrics

(* Several scheme columns of one row in lockstep: the columns already
   share the row seed (schemes are compared on identical workloads), so
   they can also share the workload's stochastic draw streams through
   one {!Vliw_sim.Tape.set} — the first column records every draw, the
   rest replay it. Each column's IPC is bit-identical to an independent
   [simulate_prepared] run (property-tested). *)
let simulate_prepared_columns pr columns =
  let tapes = Vliw_sim.Tape.create_set () in
  List.map (simulate_prepared ~tapes pr) columns

let snapshot_with extra base =
  { Counters.counters = List.sort compare (extra @ base); histograms = [] }

let run_cells ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?scheme_names ?columns ?mix_names ?(jobs = 1) ?(lockstep = false) ?progress
    ?(telemetry = false) ?(max_retries = 0) ?cell_timeout_s ?checkpoint
    ?(resume = false) ?(log = fun (_ : string) -> ()) ?on_event () =
  let emit ev = match on_event with Some f -> f ev | None -> () in
  let columns =
    match columns with
    | Some cols ->
      if cols = [] then invalid_arg "Sweep.run_cells: empty column list";
      if scheme_names <> None then
        invalid_arg "Sweep.run_cells: ~columns and ~scheme_names are exclusive";
      cols
    | None ->
      let scheme_names =
        match scheme_names with
        | Some names -> names
        | None -> default_scheme_names ()
      in
      List.map
        (fun name -> static_column (Vliw_merge.Catalog.find_exn name))
        scheme_names
  in
  let scheme_names = List.map (fun c -> c.col_name) columns in
  let mix_names =
    match mix_names with Some names -> names | None -> Vliw_workloads.Mixes.names
  in
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  (* Resolve columns and compile programs up front, in the parent
     domain: cells must not race on catalog lookups or compilation. *)
  let cols = Array.of_list columns in
  let rows =
    List.map
      (fun mix_name ->
        (mix_name, row_seed ~seed mix_name, compile_mix ~machine ~seed mix_name))
      mix_names
  in
  let meta =
    {
      Checkpoint.scale = Common.scale_name scale;
      seed;
      scheme_names;
      mix_names;
      telemetry;
    }
  in
  let journal =
    match checkpoint with
    | None -> None
    | Some path ->
      let fresh () = Checkpoint.create meta in
      let initial =
        if resume then begin
          match Checkpoint.load ~path with
          | Ok j when Checkpoint.meta_equal j.Checkpoint.meta meta -> j
          | Ok _ ->
            log
              (path
             ^ ": checkpoint belongs to a different sweep configuration; \
                starting fresh");
            fresh ()
          | Error msg ->
            if Sys.file_exists path then log (msg ^ "; starting fresh");
            fresh ()
        end
        else fresh ()
      in
      (* Persist the header immediately: a kill before the first cell
         completes must still leave a resumable journal behind. *)
      Checkpoint.save ~path initial;
      Some (ref initial, path)
  in
  let resumed ~mix ~scheme =
    match journal with
    | Some (j, _) when resume -> Checkpoint.find !j ~mix ~scheme
    | _ -> None
  in
  let epoch = Unix.gettimeofday () in
  (* One simulation attempt; raises on an injected fault, a simulator
     exception, or a blown per-cell timeout. The timeout is enforced
     after the fact (a domain cannot be preempted mid-simulation): the
     attempt's result is discarded and the cell retried or degraded. *)
  let attempt_once ?tapes ~row ~col ~config ~(column : column) ~row_seed
      ~programs () =
    (match !inject_failure with
    | Some f when f ~row ~col ->
      failwith (Printf.sprintf "injected fault in cell (%d, %d)" row col)
    | _ -> ());
    let t0 = Unix.gettimeofday () in
    let counters = if telemetry then Some (Counters.create ()) else None in
    (* A fresh controller per attempt: controllers are stateful, and a
       retried cell must replay from scratch to stay a pure function of
       its row seed. (A shared tape is safe across retries: replayed
       draws are position-keyed, so a fresh thread re-reads the same
       recorded values.) *)
    let controller = Option.map (fun mk -> mk ()) column.col_controller in
    let metrics =
      Vliw_sim.Multitask.run_programs config ~seed:row_seed ~schedule ?counters
        ?controller ?tapes programs
    in
    Option.iter
      (fun c ->
        if Vliw_sim.Invariants.enforced () then
          Vliw_sim.Invariants.check_attribution (Counters.snapshot c))
      counters;
    let elapsed = Unix.gettimeofday () -. t0 in
    (match cell_timeout_s with
    | Some limit_s when elapsed > limit_s ->
      raise (Cell_timeout { elapsed_s = elapsed; limit_s })
    | _ -> ());
    (metrics, counters, t0, elapsed)
  in
  let simulate_cell ?tapes ~row ~col ~mix_name ~row_seed ~programs
      ~(column : column) ~worker () =
    let config = Vliw_sim.Config.make ~machine column.col_scheme in
    emit (Cell_started { mix = mix_name; scheme = column.col_name; worker });
    let rec go ~attempt ~timeouts =
      match
        attempt_once ?tapes ~row ~col ~config ~column ~row_seed ~programs ()
      with
      | metrics, counters, t0, elapsed ->
        Option.iter
          (fun c ->
            if attempt > 1 then
              Counters.add
                (Counters.counter c Report.n_sweep_retries)
                (attempt - 1);
            if timeouts > 0 then
              Counters.add (Counters.counter c Report.n_sweep_timeouts) timeouts)
          counters;
        {
          mix = mix_name;
          scheme = column.col_name;
          ipc = Vliw_sim.Metrics.ipc metrics;
          elapsed_s = elapsed;
          started_s = t0 -. epoch;
          worker;
          telemetry = Option.map Counters.snapshot counters;
          attempts = attempt;
          error = None;
        }
      | exception e ->
        let timeouts =
          match e with Cell_timeout _ -> timeouts + 1 | _ -> timeouts
        in
        if attempt <= max_retries then begin
          emit
            (Cell_retried
               {
                 mix = mix_name;
                 scheme = column.col_name;
                 attempt;
                 error = Printexc.to_string e;
               });
          go ~attempt:(attempt + 1) ~timeouts
        end
        else begin
          emit
            (Cell_degraded
               {
                 mix = mix_name;
                 scheme = column.col_name;
                 attempts = attempt;
                 error = Printexc.to_string e;
               });
          let telemetry_snap =
            if telemetry then
              Some
                (snapshot_with
                   ((Report.n_sweep_degraded, 1)
                   :: (Report.n_sweep_retries, attempt - 1)
                   :: (if timeouts > 0 then [ (Report.n_sweep_timeouts, timeouts) ]
                       else []))
                   [])
            else None
          in
          {
            mix = mix_name;
            scheme = column.col_name;
            ipc = Float.nan;
            elapsed_s = 0.0;
            started_s = Unix.gettimeofday () -. epoch;
            worker;
            telemetry = telemetry_snap;
            attempts = attempt;
            error = Some (Printexc.to_string e);
          }
        end
    in
    go ~attempt:1 ~timeouts:0
  in
  let restore_cell ~(record : Checkpoint.record) ~worker =
    let telemetry_snap =
      if telemetry then
        Some
          (snapshot_with
             [ (Report.n_sweep_resumed, 1) ]
             (Option.value ~default:[] record.counters))
      else None
    in
    {
      mix = record.mix;
      scheme = record.scheme;
      ipc = record.ipc;
      elapsed_s = 0.0;
      started_s = Unix.gettimeofday () -. epoch;
      worker;
      telemetry = telemetry_snap;
      attempts = 0;
      error = None;
    }
  in
  (* Every task yields a [cell array]: one cell per task normally, one
     whole row per task under [lockstep], where the row's columns share
     a draw-tape set (see [simulate_prepared_columns]) — so the grid
     parallelizes over rows instead of cells, and sibling columns reuse
     the first column's recorded draws. Cells are bit-identical either
     way (property-tested at jobs 1 and 4). *)
  let cell_of ?tapes ~row ~col ~mix_name ~row_seed ~programs ~worker () =
    let column = cols.(col) in
    match resumed ~mix:mix_name ~scheme:column.col_name with
    | Some record -> restore_cell ~record ~worker
    | None ->
      simulate_cell ?tapes ~row ~col ~mix_name ~row_seed ~programs ~column
        ~worker ()
  in
  let tasks =
    if lockstep then
      Array.of_list
        (List.mapi
           (fun row (mix_name, row_seed, programs) ~worker ->
             let tapes = Vliw_sim.Tape.create_set () in
             Array.init (Array.length cols) (fun col ->
                 cell_of ~tapes ~row ~col ~mix_name ~row_seed ~programs ~worker
                   ()))
           rows)
    else
      Array.of_list
        (List.concat
           (List.mapi
              (fun row (mix_name, row_seed, programs) ->
                Array.to_list
                  (Array.init (Array.length cols) (fun col ~worker ->
                       [|
                         cell_of ~row ~col ~mix_name ~row_seed ~programs
                           ~worker ();
                       |])))
              rows))
  in
  let row_seed_of_mix =
    let seeds = List.map (fun (m, s, _) -> (m, s)) rows in
    fun mix -> List.assoc mix seeds
  in
  (* Runs inside the pool's serialized result callback: journal the
     fresh cell (atomic rewrite), then report progress. A journal write
     failure (unwritable path, full disk) aborts the sweep with the
     real error rather than silently dropping checkpoints. *)
  let journal_cell (cell : cell) =
    match journal with
    | Some (j, path) when cell.error = None ->
      if Checkpoint.find !j ~mix:cell.mix ~scheme:cell.scheme = None then begin
        j :=
          Checkpoint.add !j
            {
              Checkpoint.mix = cell.mix;
              scheme = cell.scheme;
              row_seed = row_seed_of_mix cell.mix;
              ipc = cell.ipc;
              attempts = cell.attempts;
              counters =
                Option.map (fun (s : Counters.snapshot) -> s.counters)
                  cell.telemetry;
            };
        Checkpoint.save ~path !j
      end
    | _ -> ()
  in
  (* Worker count the pool will actually use, for the ETA heuristic. *)
  let effective_jobs =
    if jobs <= 0 then Domain.recommended_domain_count () else jobs
  in
  let n_schemes = Array.length cols in
  let total_cells = n_schemes * List.length rows in
  let on_result =
    let completed = ref 0 in
    let elapsed_sum = ref 0.0 and timed = ref 0 in
    Some
      (fun _i (res : (cell array, exn) result) ->
        match res with
        | Error _ -> () (* repackaged as degraded cells below *)
        | Ok task_cells ->
          Array.iter
            (fun cell ->
              journal_cell cell;
              incr completed;
              if cell.attempts > 0 && cell.error = None then begin
                (* Restored and degraded cells carry no useful timing;
                   ETA calibrates on genuinely simulated cells only. *)
                elapsed_sum := !elapsed_sum +. cell.elapsed_s;
                incr timed
              end;
              (if on_event <> None then
                 let eta_s =
                   if !timed = 0 then Float.nan
                   else
                     !elapsed_sum /. float_of_int !timed
                     *. float_of_int (total_cells - !completed)
                     /. float_of_int effective_jobs
                 in
                 emit
                   (Cell_finished
                      { cell; completed = !completed; total = total_cells; eta_s }));
              match progress with
              | None -> ()
              | Some f -> f { completed = !completed; total = total_cells; last = cell })
            task_cells)
  in
  emit
    (Sweep_started
       {
         total = total_cells;
         jobs = effective_jobs;
         scale = Common.scale_name scale;
         seed;
       });
  (* [simulate_cell] already contains every expected failure, so a task
     exception here means the harness itself broke (e.g. the journal
     write raised). [run_results] still isolates it to its task. *)
  let results = Vliw_util.Pool.run_results ~jobs ?on_result tasks in
  let degraded_cell ~mix_name ~(column : column) e =
    {
      mix = mix_name;
      scheme = column.col_name;
      ipc = Float.nan;
      elapsed_s = 0.0;
      started_s = 0.0;
      worker = 0;
      telemetry = None;
      attempts = 0;
      error = Some (Printexc.to_string e);
    }
  in
  let cells =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun idx -> function
              | Ok task_cells -> task_cells
              | Error e ->
                if lockstep then begin
                  let mix_name, _, _ = List.nth rows idx in
                  Array.map (fun column -> degraded_cell ~mix_name ~column e) cols
                end
                else begin
                  let mix_name, _, _ = List.nth rows (idx / n_schemes) in
                  [| degraded_cell ~mix_name ~column:cols.(idx mod n_schemes) e |]
                end)
            results))
  in
  emit
    (Sweep_finished
       {
         total = Array.length cells;
         degraded =
           Array.fold_left
             (fun acc c -> acc + (if c.error <> None then 1 else 0))
             0 cells;
         wall_s = Unix.gettimeofday () -. epoch;
       });
  (scheme_names, mix_names, cells)

let grid_of_cells ~scheme_names ~mix_names cells =
  let n_schemes = List.length scheme_names in
  let ipc =
    Array.init (List.length mix_names) (fun i ->
        Array.init n_schemes (fun j -> cells.((i * n_schemes) + j).ipc))
  in
  Common.make_grid ~scheme_names ~mix_names ~ipc

let run ?scale ?seed ?scheme_names ?mix_names ?jobs ?lockstep ?progress
    ?max_retries ?cell_timeout_s ?checkpoint ?resume ?log ?on_event () =
  let scheme_names, mix_names, cells =
    run_cells ?scale ?seed ?scheme_names ?mix_names ?jobs ?lockstep ?progress
      ?max_retries ?cell_timeout_s ?checkpoint ?resume ?log ?on_event ()
  in
  grid_of_cells ~scheme_names ~mix_names cells

let total_elapsed_s cells =
  Array.fold_left (fun acc c -> acc +. c.elapsed_s) 0.0 cells

let merged_telemetry cells =
  Array.fold_left
    (fun acc c ->
      match c.telemetry with
      | None -> acc
      | Some s -> Counters.merge acc s)
    Counters.empty cells

let chrome_trace ?(process_name = "vliwsim sweep") cells =
  let spans =
    Array.to_list cells
    |> List.map (fun c ->
           {
             Vliw_telemetry.Chrome_trace.lane = c.worker;
             name = Printf.sprintf "%s/%s" c.mix c.scheme;
             start_us = c.started_s *. 1e6;
             dur_us = c.elapsed_s *. 1e6;
             args =
               [
                 ("mix", c.mix);
                 ("scheme", c.scheme);
                 ("ipc", Common.ipc_string c.ipc);
               ];
           })
  in
  let lane_names =
    Array.fold_left (fun acc c -> max acc c.worker) 0 cells |> fun hi ->
    List.init (hi + 1) (fun w -> (w, Printf.sprintf "worker %d" w))
  in
  Vliw_telemetry.Chrome_trace.of_spans ~process_name ~lane_names spans

let telemetry_csv cells =
  let rows =
    Array.to_list cells
    |> List.concat_map (fun c ->
           match c.telemetry with
           | None -> []
           | Some s ->
             List.map
               (fun (name, v) -> [ c.mix; c.scheme; name; string_of_int v ])
               s.Counters.counters)
  in
  ([ "mix"; "scheme"; "counter"; "value" ], rows)
