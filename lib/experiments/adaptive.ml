(* Adaptive merging: can a per-timeslice scheme controller beat the
   best static scheme of its hardware-cost class?

   The candidate set is the catalog performance group of the paper's
   pick 2SC3 — five schemes with comparable delay/transistor cost, so
   the controller reconfigures the same hardware envelope rather than
   upgrading the machine. The sweep runs every static member as its own
   column, plus two adaptive columns over identical programs and row
   seeds:

   - "oracle": samples every candidate once, then commits to the best
     observed IPC for the rest of the run (an upper-ish baseline);
   - "adaptive": the telemetry-driven hill-climber with a 2-slice
     explore period, probing along the SMT-block-count axis.

   Adaptive columns pay real reconfiguration penalties (priced by
   [Vliw_cost.Scheme_cost.switch_penalty], charged as issue-stall
   bubbles), so the headline question is honest: does mid-run switching
   recover more IPC than its bubbles cost, anywhere on the mix grid?

   Telemetry is always on for this experiment — the render reports each
   adaptive column's switch counts, stall cycles and per-scheme decision
   trail, all of which live in the cell counter snapshots. Counting is
   observation-only, so results are unchanged. *)

module Controller = Vliw_sim.Controller
module Counters = Vliw_telemetry.Counters
module Report = Vliw_telemetry.Report

(* The initial scheme of every column, and the scheme whose catalog
   performance group defines the candidate set. *)
let anchor_scheme = "2SC3"

let adaptive_policy = Controller.default_hill

let oracle_policy = Controller.default_oracle

let candidates () = Controller.group_candidates anchor_scheme

let static_names () =
  List.map (fun (c : Controller.candidate) -> c.name) (candidates ())

let columns () =
  let candidates = candidates () in
  let static =
    List.map
      (fun (c : Controller.candidate) ->
        Sweep.static_column (Vliw_merge.Catalog.find_exn c.name))
      candidates
  in
  let adaptive name policy =
    {
      Sweep.col_name = name;
      col_scheme = (Vliw_merge.Catalog.find_exn anchor_scheme).scheme;
      col_policy = Controller.policy_to_string policy;
      col_controller =
        Some
          (fun () -> Controller.create policy ~candidates ~initial:anchor_scheme);
    }
  in
  static @ [ adaptive "oracle" oracle_policy; adaptive "adaptive" adaptive_policy ]

type data = {
  grid : Common.grid;  (* static members + "oracle" + "adaptive" columns *)
  cells : Sweep.cell array;
  static_names : string list;
  policy : string;  (* the "adaptive" column's policy descriptor *)
}

let run ?scale ?seed ?jobs ?progress ?max_retries ?cell_timeout_s ?checkpoint
    ?resume ?log ?on_event () =
  let scheme_names, mix_names, cells =
    Sweep.run_cells ?scale ?seed ~columns:(columns ()) ?jobs ?progress
      ~telemetry:true ?max_retries ?cell_timeout_s ?checkpoint ?resume ?log
      ?on_event ()
  in
  let grid = Sweep.grid_of_cells ~scheme_names ~mix_names cells in
  {
    grid;
    cells;
    static_names = static_names ();
    policy = Controller.policy_to_string adaptive_policy;
  }

let mix_index d mix =
  let rec go i = function
    | [] -> invalid_arg ("adaptive: unknown mix " ^ mix)
    | m :: _ when m = mix -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 d.grid.mix_names

(* (name, ipc) of the best static column for one mix row; nan cells
   (degraded) never win. *)
let best_static d mix =
  let mix_idx = mix_index d mix in
  List.fold_left
    (fun (best_name, best_ipc) name ->
      let v = d.grid.ipc.(mix_idx).(Common.scheme_index d.grid name) in
      if (not (Float.is_nan v)) && (Float.is_nan best_ipc || v > best_ipc) then
        (name, v)
      else (best_name, best_ipc))
    ("-", Float.nan) d.static_names

let column_ipc d col mix =
  d.grid.ipc.(mix_index d mix).(Common.scheme_index d.grid col)

(* Mixes where a column strictly beats / at least matches the best
   static member (nan rows are skipped). *)
let wins d col =
  List.fold_left
    (fun (wins, ties) mix ->
      let _, best = best_static d mix in
      let v = column_ipc d col mix in
      if Float.is_nan v || Float.is_nan best then (wins, ties)
      else if v > best then (wins + 1, ties)
      else if v = best then (wins, ties + 1)
      else (wins, ties))
    (0, 0) d.grid.mix_names

(* Per-column switch statistics summed over the mix rows, recovered
   from the cell telemetry: (reconfigurations, stall cycles charged,
   boundary decisions per candidate scheme). *)
let switch_stats d col =
  let switches = ref 0 and stall = ref 0 in
  let decisions = Hashtbl.create 8 in
  Array.iter
    (fun (c : Sweep.cell) ->
      if c.scheme = col then
        match c.telemetry with
        | None -> ()
        | Some snap ->
          switches := !switches + Counters.count snap Report.n_scheme_switches;
          stall := !stall + Counters.count snap Report.n_switch_stall;
          let pl = String.length Report.n_controller_prefix in
          List.iter
            (fun (name, v) ->
              if
                String.length name > pl
                && String.sub name 0 pl = Report.n_controller_prefix
              then begin
                let scheme = String.sub name pl (String.length name - pl) in
                Hashtbl.replace decisions scheme
                  (v
                  + Option.value ~default:0 (Hashtbl.find_opt decisions scheme))
              end)
            snap.Counters.counters)
    d.cells;
  let trail =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) decisions [] |> List.sort compare
  in
  (!switches, !stall, trail)

let mean_over_mixes d f =
  let vals = List.filter_map f d.grid.mix_names in
  match vals with
  | [] -> Float.nan
  | _ -> List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)

let adaptive_mean d =
  mean_over_mixes d (fun mix ->
      let v = column_ipc d "adaptive" mix in
      if Float.is_nan v then None else Some v)

let best_static_mean d =
  mean_over_mixes d (fun mix ->
      let _, v = best_static d mix in
      if Float.is_nan v then None else Some v)

(* Scalar results for the run ledger. *)
let gauges d =
  let a_wins, a_ties = wins d "adaptive" in
  let o_wins, _ = wins d "oracle" in
  [
    ("ipc.mean", Common.grid_mean d.grid);
    ("adaptive.ipc.mean", adaptive_mean d);
    ("best_static.ipc.mean", best_static_mean d);
    ("adaptive.wins", float_of_int a_wins);
    ("adaptive.ties", float_of_int a_ties);
    ("oracle.wins", float_of_int o_wins);
  ]

let render d =
  let table =
    Vliw_util.Text_table.create
      ~header:
        ("Mix" :: d.static_names
        @ [ "oracle"; "adaptive"; "best static"; "adapt vs best" ])
  in
  List.iter
    (fun mix ->
      let best_name, best = best_static d mix in
      let a = column_ipc d "adaptive" mix in
      let delta =
        if Float.is_nan a || Float.is_nan best || best <= 0.0 then "n/a"
        else Printf.sprintf "%+.1f%%" (100.0 *. ((a /. best) -. 1.0))
      in
      Vliw_util.Text_table.add_row table
        (mix
        :: List.map
             (fun name -> Common.ipc_string ~decimals:2 (column_ipc d name mix))
             d.static_names
        @ [
            Common.ipc_string ~decimals:2 (column_ipc d "oracle" mix);
            Common.ipc_string ~decimals:2 a;
            Printf.sprintf "%s (%s)"
              (Common.ipc_string ~decimals:2 best)
              best_name;
            delta;
          ]))
    d.grid.mix_names;
  let a_wins, a_ties = wins d "adaptive" in
  let o_wins, o_ties = wins d "oracle" in
  let n_mixes = List.length d.grid.mix_names in
  let switch_lines =
    String.concat ""
      (List.map
         (fun col ->
           let switches, stall, trail = switch_stats d col in
           Printf.sprintf
             "%-8s %d reconfiguration(s), %d stall cycle(s) charged; \
              decisions: %s\n"
             col switches stall
             (if trail = [] then "-"
              else
                String.concat ", "
                  (List.map
                     (fun (name, v) -> Printf.sprintf "%s x%d" name v)
                     trail)))
         [ "oracle"; "adaptive" ])
  in
  Printf.sprintf
    "Adaptive merging: per-timeslice controller vs the %s cost group\n"
    anchor_scheme
  ^ Printf.sprintf "  policy: %s, candidates: %s\n" d.policy
      (String.concat ", " d.static_names)
  ^ Vliw_util.Text_table.render table
  ^ Printf.sprintf
      "\nAdaptive beats the best static scheme on %d of %d mixes (%d tie(s)); \
       oracle on %d (%d tie(s)).\n"
      a_wins n_mixes a_ties o_wins o_ties
  ^ Printf.sprintf "Mean IPC: adaptive %s vs best-static %s.\n"
      (Common.ipc_string ~decimals:4 (adaptive_mean d))
      (Common.ipc_string ~decimals:4 (best_static_mean d))
  ^ switch_lines

let csv_rows d = Common.grid_csv d.grid
