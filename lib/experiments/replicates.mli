(** Statistical replication: the headline claims across independent
    seeds, reported as mean +/- standard deviation. Guards against a
    conclusion that holds for one random workload instantiation only. *)

type stat = { mean : float; sd : float }

type t = {
  n : int;
  smt4_over_smt2 : stat;
  smt_over_csmt : stat;
  sc3_over_csmt4 : stat;
  sc3_over_smt2 : stat;
  sc3_below_smt4 : stat;
}

val run : ?scale:Common.scale -> ?seeds:int64 list -> ?jobs:int -> unit -> t
(** Default: five seeds (two at [Quick] scale, where the run is a smoke
    test). [jobs] parallelizes each seed's fig10 sweep. *)

val render : t -> string
