(** Statistical replication: the headline claims across independent
    seeds (mean +/- standard deviation) plus per-cell 95% confidence
    intervals over the full (mix x scheme) grid. Guards against a
    conclusion that holds for one random workload instantiation only;
    the -at-scale path (100 seeds and beyond) is what the distributed
    coordinator feeds through [fig10s]. *)

type stat = { mean : float; sd : float }

type cell_ci = {
  ci_mix : string;
  ci_scheme : string;
  ci_mean : float;  (** mean IPC over non-degraded replicates; nan if none *)
  ci_sd : float;
  ci_half : float;  (** 95% half-width (1.96 sd / sqrt n); 0 when n < 2 *)
  ci_n : int;
}

type t = {
  n : int;
  seeds : int64 list;
  smt4_over_smt2 : stat;
  smt_over_csmt : stat;
  sc3_over_csmt4 : stat;
  sc3_over_smt2 : stat;
  sc3_below_smt4 : stat;
  cells : cell_ci list;  (** mix-major, one entry per (mix, scheme) *)
}

val default_seeds : int64 list

val derive_seeds : ?seed:int64 -> int -> int64 list
(** [n] replicate seeds derived deterministically from the master seed
    (default {!Common.default_seed}) via the sweep's row-seed
    scramble — reproducible -at-scale seed lists from one number. *)

val cell_stats : (int64 * Fig10.data) list -> cell_ci list
(** Per-cell mean / sd / 95% half-width across the given replicate
    grids, mix-major like the grids themselves. Degraded (nan) cells
    drop out of a cell's count. Unlike {!of_grids} this needs no
    claim-bearing schemes, so it works on any grid shape. *)

val cell_gauges : cell_ci list -> (string * float) list
(** [ipc.mean.MIX.SCHEME] and [ipc.ci95.MIX.SCHEME] gauges for the run
    ledger (cells with no surviving replicate are skipped). *)

val of_grids : (int64 * Fig10.data) list -> t
(** Summarize per-seed fig10 artifacts (however they were computed). *)

val run :
  ?scale:Common.scale ->
  ?seeds:int64 list ->
  ?jobs:int ->
  ?fig10s:(seeds:int64 list -> (int64 * Fig10.data) list) ->
  unit ->
  t
(** Default seeds: five (two at [Quick] scale, where the run is a smoke
    test). [jobs] parallelizes each seed's fig10 sweep in-process;
    [fig10s] replaces the per-seed execution entirely (the distributed
    runner plugs in here) and must return one artifact per seed. *)

val render : t -> string
