type data = { single : float; two_thread : float; four_thread : float }

let run ?scale ?seed ?jobs ?progress ?max_retries () =
  let grid =
    Sweep.run ?scale ?seed ~scheme_names:[ "ST"; "1S"; "3SSS" ] ?jobs ?progress
      ?max_retries ()
  in
  {
    single = Common.grid_average grid "ST";
    two_thread = Common.grid_average grid "1S";
    four_thread = Common.grid_average grid "3SSS";
  }

let four_over_two_pct d = Vliw_util.Stats.pct_diff d.four_thread d.two_thread

let render d =
  let chart =
    Vliw_util.Ascii_chart.bar_chart
      [
        ("Single-thread", d.single);
        ("2-Thread SMT", d.two_thread);
        ("4-Thread SMT", d.four_thread);
      ]
  in
  Printf.sprintf
    "Figure 4: SMT performance (average IPC over the 9 mixes)\n%s\n\
     4-thread vs 2-thread SMT: %+.0f%% (paper: +61%%)\n"
    chart (four_over_two_pct d)
