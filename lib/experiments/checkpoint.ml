(* Sweep checkpoint journal.

   One journal records the completed cells of one (mix x scheme) sweep:
   a [meta] header naming the sweep's full configuration and one [cell]
   line per completed (mix, scheme) pair with its row seed, IPC and
   optional telemetry counters. The IPC is stored as the hex image of
   its IEEE-754 bits, so a resumed grid is bit-identical to an
   uninterrupted one — no decimal round-trip.

   Persistence goes through [Vliw_util.Atomic_io] (temp-file +
   rename): a crash mid-save leaves either the previous journal or the
   new one, never a torn file. The journal is rewritten whole on every
   append; sweeps have at most a few hundred cells, so the O(cells)
   rewrite is noise next to a single simulation.

   Degraded cells (exhausted retry budget) are deliberately NOT
   journaled: resuming retries them instead of pinning the failure. *)

type meta = {
  scale : string;
  seed : int64;
  scheme_names : string list;
  mix_names : string list;
  telemetry : bool;
}

type record = {
  mix : string;
  scheme : string;
  row_seed : int64;
  ipc : float;
  attempts : int;
  counters : (string * int) list option;
}

type t = { meta : meta; records : record list }

let create meta = { meta; records = [] }

let add t r = { t with records = t.records @ [ r ] }

let find t ~mix ~scheme =
  List.find_opt (fun r -> r.mix = mix && r.scheme = scheme) t.records

let meta_equal a b =
  a.scale = b.scale && a.seed = b.seed
  && a.scheme_names = b.scheme_names
  && a.mix_names = b.mix_names
  && a.telemetry = b.telemetry

(* --- field encoding --------------------------------------------------

   Names (mixes, schemes, counters) are plain tokens today, but the
   format must not silently corrupt if one ever grows a space or an
   equals sign: every value is percent-encoded outside [A-Za-z0-9_.:/-]. *)

let plain_char c =
  match c with
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | ':' | '/' | '-' -> true
  | _ -> false

let encode s =
  if String.for_all plain_char s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if plain_char c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  end

let decode s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '%' && !i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
        | Some code -> Buffer.add_char buf (Char.chr code)
        | None -> Buffer.add_char buf s.[!i]);
        i := !i + 3
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let names_field names = String.concat "," (List.map encode names)

let parse_names s =
  if s = "" then [] else List.map decode (String.split_on_char ',' s)

let counters_field cs =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "%s:%d" (encode k) v) cs)

let parse_counters s =
  if s = "" then Some []
  else
    let parse_one field =
      match String.rindex_opt field ':' with
      | None -> None
      | Some i ->
        let k = decode (String.sub field 0 i) in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        Option.map (fun v -> (k, v)) (int_of_string_opt v)
    in
    let fields = String.split_on_char ',' s in
    let parsed = List.filter_map parse_one fields in
    if List.length parsed = List.length fields then Some parsed else None

(* --- serialization --------------------------------------------------- *)

let magic = "vliwsim-checkpoint v1"

let meta_line m =
  Printf.sprintf "meta scale=%s seed=0x%Lx telemetry=%b schemes=%s mixes=%s"
    (encode m.scale) m.seed m.telemetry
    (names_field m.scheme_names)
    (names_field m.mix_names)

let record_line r =
  let base =
    Printf.sprintf "cell mix=%s scheme=%s seed=0x%Lx ipc=0x%Lx attempts=%d"
      (encode r.mix) (encode r.scheme) r.row_seed
      (Int64.bits_of_float r.ipc)
      r.attempts
  in
  match r.counters with
  | None -> base
  | Some cs -> base ^ " counters=" ^ counters_field cs

let to_string t =
  String.concat "\n"
    ((magic :: meta_line t.meta :: List.map record_line t.records) @ [ "" ])

let save ~path t = Vliw_util.Atomic_io.write_file ~path (to_string t)

(* Parse a "key=value key=value" tail into an assoc list. *)
let parse_fields s =
  String.split_on_char ' ' s
  |> List.filter_map (fun field ->
         match String.index_opt field '=' with
         | None -> None
         | Some i ->
           Some
             ( String.sub field 0 i,
               String.sub field (i + 1) (String.length field - i - 1) ))

let field fields k = List.assoc_opt k fields

let parse_meta line =
  let fields = parse_fields line in
  match (field fields "scale", field fields "seed") with
  | Some scale, Some seed_s ->
    Option.map
      (fun seed ->
        {
          scale = decode scale;
          seed;
          telemetry = field fields "telemetry" = Some "true";
          scheme_names =
            parse_names (Option.value ~default:"" (field fields "schemes"));
          mix_names =
            parse_names (Option.value ~default:"" (field fields "mixes"));
        })
      (Int64.of_string_opt seed_s)
  | _ -> None

let parse_record line =
  let fields = parse_fields line in
  match
    ( field fields "mix",
      field fields "scheme",
      field fields "seed",
      field fields "ipc" )
  with
  | Some mix, Some scheme, Some seed_s, Some ipc_s ->
    (match (Int64.of_string_opt seed_s, Int64.of_string_opt ipc_s) with
    | Some row_seed, Some ipc_bits ->
      Some
        {
          mix = decode mix;
          scheme = decode scheme;
          row_seed;
          ipc = Int64.float_of_bits ipc_bits;
          attempts =
            Option.value ~default:1
              (Option.bind (field fields "attempts") int_of_string_opt);
          counters = Option.bind (field fields "counters") parse_counters;
        }
    | _ -> None)
  | _ -> None

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
    (match String.split_on_char '\n' text with
    | first :: rest when first = magic ->
      let meta = ref None and records = ref [] in
      List.iter
        (fun line ->
          if String.length line > 5 && String.sub line 0 5 = "meta " then
            meta :=
              (match !meta with
              | Some _ as m -> m (* first meta wins *)
              | None -> parse_meta (String.sub line 5 (String.length line - 5)))
          else if String.length line > 5 && String.sub line 0 5 = "cell " then
            (* A malformed cell line (manual edit, disk corruption) is
               dropped rather than fatal: the sweep just re-runs it. *)
            match parse_record (String.sub line 5 (String.length line - 5)) with
            | Some r -> records := r :: !records
            | None -> ())
        rest;
      (match !meta with
      | None -> Error (path ^ ": missing or unparsable meta line")
      | Some meta -> Ok { meta; records = List.rev !records })
    | _ -> Error (path ^ ": not a vliwsim checkpoint (bad magic)"))
