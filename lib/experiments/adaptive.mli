(** Adaptive merging: a per-timeslice scheme controller vs the best
    static scheme of its hardware-cost class.

    The candidate set is the catalog performance group of the paper's
    pick 2SC3 (five comparable-cost schemes). The sweep runs every
    static member as its own column plus two adaptive columns — an
    oracle sampler and a telemetry-driven hill-climber — over identical
    programs and row seeds. Adaptive columns pay real reconfiguration
    penalties ({!Vliw_cost.Scheme_cost.switch_penalty}), charged as
    issue-stall bubbles, so the headline comparison is honest.

    Telemetry is always collected (the render reports switch counts and
    per-scheme decision trails); counting is observation-only, so IPC
    results are unchanged. *)

val anchor_scheme : string
(** ["2SC3"]: every column's initial scheme, and the scheme whose
    catalog performance group defines the candidate set. *)

val adaptive_policy : Vliw_sim.Controller.policy
(** The hill-climbing policy behind the ["adaptive"] column. *)

val oracle_policy : Vliw_sim.Controller.policy
(** The sample-then-commit policy behind the ["oracle"] column. *)

val columns : unit -> Sweep.column list
(** The sweep columns: the candidate group's static members (catalog
    order), then ["oracle"], then ["adaptive"]. *)

type data = {
  grid : Common.grid;
      (** Static members + ["oracle"] + ["adaptive"] columns. *)
  cells : Sweep.cell array;  (** Raw cells, with telemetry snapshots. *)
  static_names : string list;  (** The candidate group's members. *)
  policy : string;
      (** The ["adaptive"] column's policy descriptor — what the run
          ledger fingerprints. *)
}

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?progress:(Sweep.progress -> unit) ->
  ?max_retries:int ->
  ?cell_timeout_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  ?on_event:(Sweep.event -> unit) ->
  unit ->
  data
(** Run the adaptive sweep. The fault-tolerance knobs behave as in
    {!Sweep.run_cells}; give [checkpoint] its own path (the column set
    differs from the shared fig10 sweep, so the journals must not share
    a file). *)

val best_static : data -> string -> string * float
(** [(name, ipc)] of the best static column for one mix row; degraded
    (nan) cells never win. *)

val column_ipc : data -> string -> string -> float
(** [column_ipc d col mix]. *)

val wins : data -> string -> int * int
(** [(strict wins, ties)] of a column against the per-mix best static
    scheme, over all comparable mixes. *)

val switch_stats : data -> string -> int * int * (string * int) list
(** [(reconfigurations, stall cycles charged, boundary decisions per
    candidate scheme)] of a column, summed over its mix rows. *)

val adaptive_mean : data -> float
(** Mean IPC of the ["adaptive"] column over non-nan mixes. *)

val best_static_mean : data -> float
(** Mean of the per-mix best static IPC over non-nan mixes. *)

val gauges : data -> (string * float) list
(** Scalar results for the run ledger: mean IPCs and win counts. *)

val render : data -> string

val csv_rows : data -> string list * string list list
