(** Figure 4: SMT performance at 1, 2 and 4 hardware threads (average IPC
    over the nine workload mixes). The paper's headline: the 4-thread SMT
    outperforms the 2-thread SMT by 61%. *)

type data = {
  single : float;
  two_thread : float;  (** Scheme 1S. *)
  four_thread : float;  (** Scheme 3SSS. *)
}

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?progress:(Sweep.progress -> unit) ->
  ?max_retries:int ->
  unit ->
  data
(** [max_retries] is passed to {!Sweep.run} (cell retry budget). *)

val four_over_two_pct : data -> float

val render : data -> string
