type data = {
  grid : Common.grid;
  groups : (string * string list) list;
  cells : Sweep.cell array;
}

let legend_groups =
  List.filter (fun (g, _) -> g <> "ST") Vliw_merge.Catalog.perf_groups

let scheme_names =
  List.filter_map
    (fun (e : Vliw_merge.Catalog.entry) ->
      if e.name = "ST" then None else Some e.name)
    Vliw_merge.Catalog.all

(* Fold externally computed cells (a distributed sweep's merged grid)
   into the same artifact [run] builds — the seam `exp --workers N`
   plugs a coordinator into. *)
let of_cells ~scheme_names ~mix_names cells =
  let grid = Sweep.grid_of_cells ~scheme_names ~mix_names cells in
  { grid; groups = legend_groups; cells }

let run ?scale ?seed ?jobs ?progress ?telemetry ?max_retries ?cell_timeout_s
    ?checkpoint ?resume ?log ?on_event () =
  let scheme_names', mix_names, cells =
    Sweep.run_cells ?scale ?seed ~scheme_names ?jobs ?progress ?telemetry
      ?max_retries ?cell_timeout_s ?checkpoint ?resume ?log ?on_event ()
  in
  let grid = Sweep.grid_of_cells ~scheme_names:scheme_names' ~mix_names cells in
  { grid; groups = legend_groups; cells }

let members d group =
  match List.assoc_opt group d.groups with
  | Some m -> m
  | None -> invalid_arg ("fig10: unknown group " ^ group)

let group_ipc d group =
  let cols = List.map (Common.grid_column d.grid) (members d group) in
  let n_mixes = List.length d.grid.mix_names in
  Array.init n_mixes (fun i ->
      Vliw_util.Stats.mean (Array.of_list (List.map (fun c -> c.(i)) cols)))

let group_average d group = Vliw_util.Stats.mean (group_ipc d group)

let group_spread d group =
  let cols = List.map (Common.grid_column d.grid) (members d group) in
  let n_mixes = List.length d.grid.mix_names in
  let spread_at i =
    let vals = List.map (fun c -> c.(i)) cols in
    let lo = List.fold_left min infinity vals in
    let hi = List.fold_left max neg_infinity vals in
    if lo <= 0.0 then 0.0 else (hi -. lo) /. lo
  in
  let worst = ref 0.0 in
  for i = 0 to n_mixes - 1 do
    worst := max !worst (spread_at i)
  done;
  !worst

let scheme_average d name = Common.grid_average d.grid name

let render d =
  let table =
    Vliw_util.Text_table.create ~header:("Mix" :: List.map fst d.groups)
  in
  let group_cols = List.map (fun (g, _) -> (g, group_ipc d g)) d.groups in
  List.iteri
    (fun i mix ->
      Vliw_util.Text_table.add_row table
        (mix
        :: List.map (fun (_, col) -> Printf.sprintf "%.2f" col.(i)) group_cols))
    d.grid.mix_names;
  Vliw_util.Text_table.add_sep table;
  Vliw_util.Text_table.add_row table
    ("Average"
    :: List.map
         (fun (g, _) -> Printf.sprintf "%.2f" (group_average d g))
         group_cols);
  let chart =
    Vliw_util.Ascii_chart.grouped_bar_chart ~group_labels:d.grid.mix_names
      ~series:(List.map (fun (g, _) -> (g, group_ipc d g)) d.groups)
      ()
  in
  "Figure 10: merging schemes performance (IPC per mix; groups averaged)\n"
  ^ Vliw_util.Text_table.render table
  ^ "\n" ^ chart
