(** Declarative, deterministic, multicore (mix x scheme) sweep engine.

    Programs are compiled once per mix in the calling domain; each
    (mix, scheme) cell then simulates independently and cells are
    dispatched through {!Vliw_util.Pool}. Determinism is normative:
    results are bit-identical for any [jobs] value (property-tested).

    Seeding: every mix row gets an independently derived simulation
    seed (a SplitMix64 scramble of the master seed and the mix name).
    All scheme columns within a row deliberately share the row seed, so
    schemes are compared on identical workloads and the parallel/serial
    scheme equivalences (3CCC = C4, 2SC3 = 3SCC) stay bit-exact in
    simulation.

    Fault tolerance (opt-in): a cell whose simulation raises — or trips
    {!inject_failure}, or exceeds [cell_timeout_s] — is retried up to
    [max_retries] times, then recorded as a {e degraded} cell
    ([ipc = nan], [error = Some _]) instead of aborting the sweep.
    Because a cell is a pure function of its row seed, retries cannot
    change results. With [checkpoint], completed cells are journaled
    crash-safely ({!Checkpoint}); with [resume], journaled cells are
    restored bit-identically and only missing cells simulate. *)

type column = {
  col_name : string;
      (** Display and journal name of the grid column; must be unique
          within a sweep (it is the cell/checkpoint key). *)
  col_scheme : Vliw_merge.Scheme.t;
      (** The scheme the column's simulations start on (the only scheme,
          for a static column). *)
  col_policy : string;
      (** ["static"], or the {!Vliw_sim.Controller.policy_to_string}
          descriptor of the adaptive policy driving the column — what
          the run ledger fingerprints. *)
  col_controller : (unit -> Vliw_sim.Controller.t) option;
      (** Adaptive columns carry a controller factory; it is invoked
          once {e per simulation attempt} (controllers are stateful, and
          a retried cell must replay from a pristine one to stay a pure
          function of its row seed). [None] = static column. *)
}
(** What one grid column simulates. The classic sweep is one static
    catalog scheme per column ({!static_column}); an adaptive column
    runs the same programs under a per-timeslice scheme controller. *)

val static_column : Vliw_merge.Catalog.entry -> column
(** The classic column: one fixed scheme, no controller. *)

type cell = {
  mix : string;
  scheme : string;
  ipc : float;  (** [nan] iff the cell is degraded ([error <> None]). *)
  elapsed_s : float;  (** Wall-clock seconds spent simulating the cell. *)
  started_s : float;
      (** Start offset from the sweep's epoch (the moment [run_cells]
          began dispatching), wall clock. *)
  worker : int;  (** Pool worker that simulated the cell (0-based). *)
  telemetry : Vliw_telemetry.Counters.snapshot option;
      (** Per-cell counter snapshot when telemetry was requested.
          Timing/worker/telemetry fields are observational: they vary
          run to run, while [ipc] is bit-deterministic. Harness
          accounting rides here too: [sweep.retries], [sweep.timeouts],
          [sweep.degraded], [sweep.resumed_cells]. *)
  attempts : int;
      (** Simulation attempts the cell took (1 = first try succeeded;
          0 = restored from a checkpoint without re-simulation). *)
  error : string option;
      (** [Some _] iff the cell degraded: every attempt (1 + retries)
          failed. Degraded cells render as "n/a" and are not journaled,
          so a resumed sweep retries them. *)
}

type progress = { completed : int; total : int; last : cell }

(** Live structured progress stream, richer than [progress]: lifecycle
    events for the whole sweep and for every cell attempt. A consumer
    passed as [on_event] {b must be domain-safe}: [Cell_started],
    [Cell_retried] and [Cell_degraded] fire inside worker domains, while
    [Sweep_started], [Cell_finished] (serialized through the pool's
    result callback) and [Sweep_finished] fire in the parent.
    Observation-only: consuming events cannot change results. *)
type event =
  | Sweep_started of { total : int; jobs : int; scale : string; seed : int64 }
  | Cell_started of { mix : string; scheme : string; worker : int }
  | Cell_retried of {
      mix : string;
      scheme : string;
      attempt : int;  (** the attempt that just failed, 1-based *)
      error : string;
    }
  | Cell_degraded of {
      mix : string;
      scheme : string;
      attempts : int;
      error : string;
    }
  | Cell_finished of {
      cell : cell;
      completed : int;
      total : int;
      eta_s : float;
          (** Estimated seconds to sweep completion, calibrated from the
              mean elapsed time of genuinely simulated cells (restored
              and degraded cells don't count) divided across the
              effective worker count; [nan] until one timed cell has
              completed. *)
    }
  | Sweep_finished of { total : int; degraded : int; wall_s : float }

val json_of_event : event -> Vliw_util.Json.t
(** One JSON object per event: an ["ev"] tag, a ["ts"] wall-clock stamp,
    and the event's fields. Non-finite numbers (a degraded cell's IPC,
    an uncalibrated ETA) serialize as [null]. *)

val json_logger : out_channel -> event -> unit
(** [json_logger oc] is an [on_event] consumer that writes each event as
    one NDJSON line to [oc], flushed per line so [tail -f] follows a
    live sweep. Writes are serialized through a mutex, so the consumer
    is safe across worker domains. *)

exception Cell_timeout of { elapsed_s : float; limit_s : float }
(** Raised {e inside} a cell attempt when it overran [cell_timeout_s].
    Enforcement is post-hoc — a domain cannot be preempted mid-
    simulation — so the attempt runs to completion, its result is
    discarded, and the cell is retried or degraded like any other
    failure. *)

val inject_failure : (row:int -> col:int -> bool) option ref
(** Deterministic fault-injection hook for tests: when set, each cell
    attempt at (row, col) — mix-major indices into the sweep — first
    consults the hook and raises [Failure] if it returns [true]. The
    hook is consulted once {e per attempt} (so "fail twice then
    succeed" schedules need stateful hooks) and may be called from any
    worker domain — make stateful hooks domain-safe. Reset to [None]
    after use. *)

val degraded : cell array -> cell list
(** The degraded cells of a sweep, in mix-major order. *)

val total_retries : cell array -> int
(** Total failed attempts across all cells (Σ max(0, attempts - 1)). *)

val row_seed : seed:int64 -> string -> int64
(** The simulation seed of a mix row, a pure function of the master
    seed and the mix name. *)

type prepared_row
(** One mix row, compiled and seeded exactly as {!run_cells} would:
    programs generated in the caller's domain, row seed derived from
    the master seed and the mix name, schedule fixed by the scale. The
    unit of sharing for out-of-grid cell execution (the sweep service
    compiles a mix once and simulates many scheme cells against it,
    possibly across jobs). Immutable after construction, so worker
    domains may read it concurrently. *)

val prepare_row :
  ?scale:Common.scale -> ?seed:int64 -> string -> prepared_row
(** [prepare_row ~scale ~seed mix_name]; raises like
    {!Vliw_workloads.Mixes.find_exn} on an unknown mix. *)

val prepared_mix : prepared_row -> string

val simulate_prepared : ?tapes:Vliw_sim.Tape.set -> prepared_row -> column -> float
(** IPC of one (row, column) cell — bit-identical to the cell
    {!run_cells} produces for the same (scale, seed, mix, column)
    (property-tested). No telemetry, no events, no retries: the caller
    owns fault handling. Safe to call from a {!Vliw_util.Pool} worker.
    [tapes] shares the row's stochastic draw streams with other
    simulations of the same row (see {!Vliw_sim.Tape}); results are
    bit-identical with or without it. *)

val simulate_prepared_columns : prepared_row -> column list -> float list
(** Several scheme columns of one row in lockstep: all columns replay
    one shared draw-tape set, so the workload's stochastic streams are
    generated once and reused. Each IPC is bit-identical to an
    independent {!simulate_prepared} call (property-tested). *)

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?scheme_names:string list ->
  ?mix_names:string list ->
  ?jobs:int ->
  ?lockstep:bool ->
  ?progress:(progress -> unit) ->
  ?max_retries:int ->
  ?cell_timeout_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  ?on_event:(event -> unit) ->
  unit ->
  Common.grid
(** IPC of every (mix, scheme) pair. Defaults: all 4-thread schemes of
    the catalog, all Table 2 mixes, [jobs = 1]. [jobs <= 0] uses one
    worker per core. [progress] is called after every cell, serialized
    across workers. See {!run_cells} for the fault-tolerance knobs. *)

val run_cells :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?scheme_names:string list ->
  ?columns:column list ->
  ?mix_names:string list ->
  ?jobs:int ->
  ?lockstep:bool ->
  ?progress:(progress -> unit) ->
  ?telemetry:bool ->
  ?max_retries:int ->
  ?cell_timeout_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  ?on_event:(event -> unit) ->
  unit ->
  string list * string list * cell array
(** Like {!run} but returns the raw cells (mix-major order) with their
    per-cell wall-clock timings, plus the resolved scheme and mix
    names. [telemetry] (default [false]) attaches a fresh counter
    registry to each cell's simulation and snapshots it into
    {!cell.telemetry}; counting is observation-only, so IPC results are
    unchanged.

    [lockstep] (default [false]) runs each mix row as one pool task
    whose scheme columns share a draw-tape set
    ({!simulate_prepared_columns}): the row's stochastic streams are
    generated once and replayed by every sibling column. Parallelism is
    then over rows rather than cells; results are bit-identical to the
    independent mode at any [jobs] (property-tested).

    [columns] generalizes [scheme_names] (the two are mutually
    exclusive): each {!column} names one grid column, carrying its
    initial scheme and, for adaptive columns, a controller factory
    invoked fresh per simulation attempt. Column names are the
    cell/checkpoint keys, so a checkpoint journal from a sweep with
    different columns never resumes into this one. A sweep over static
    columns is bit-identical to the equivalent [scheme_names] sweep
    (property-tested).

    Fault-tolerance knobs:
    - [max_retries] (default 0): failed cell attempts beyond the first
      are retried this many times before the cell degrades.
    - [cell_timeout_s]: post-hoc per-attempt wall-clock limit; an
      overrunning attempt counts as a failure ({!Cell_timeout}).
    - [checkpoint]: journal every completed cell to this path, written
      atomically after each cell; a valid journal (with the header
      already written) exists from the moment the sweep starts, so a
      kill at any point leaves a resumable file. A journal write
      failure (unwritable path) aborts the sweep.
    - [resume] (default false): restore cells recorded in [checkpoint]
      instead of re-simulating them — bit-identical, the journal stores
      raw IEEE-754 bits. A journal whose configuration header does not
      match this sweep (scale, seed, schemes, mixes, telemetry) is
      ignored with a [log] warning and the sweep starts fresh.
    - [log] (default silent): diagnostic sink for journal warnings.

    Restored cells have [attempts = 0], [elapsed_s = 0.], and — when
    telemetry is on — their journaled counters plus
    [sweep.resumed_cells = 1]. *)

val grid_of_cells :
  scheme_names:string list ->
  mix_names:string list ->
  cell array ->
  Common.grid
(** Fold mix-major cells into a grid (degraded cells surface as
    [nan]). *)

val total_elapsed_s : cell array -> float
(** Sum of per-cell wall-clock times (CPU-seconds of simulation, not
    elapsed wall time when [jobs > 1]). *)

val merged_telemetry : cell array -> Vliw_telemetry.Counters.snapshot
(** Sum of all per-cell counter snapshots (cells without telemetry
    contribute nothing). *)

val chrome_trace : ?process_name:string -> cell array -> string
(** Chrome trace-event JSON of the sweep's execution timeline: one lane
    per pool worker, one slice per cell (built from [started_s] /
    [elapsed_s]), with mix/scheme/IPC as slice arguments. Load in
    Perfetto or chrome://tracing. *)

val telemetry_csv : cell array -> string list * string list list
(** (header, rows) for {!Vliw_util.Csv.write}: one row per (cell,
    counter) — columns [mix; scheme; counter; value]. Cells without
    telemetry are skipped. *)
