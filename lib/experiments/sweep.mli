(** Declarative, deterministic, multicore (mix x scheme) sweep engine.

    Programs are compiled once per mix in the calling domain; each
    (mix, scheme) cell then simulates independently and cells are
    dispatched through {!Vliw_util.Pool}. Determinism is normative:
    results are bit-identical for any [jobs] value (property-tested).

    Seeding: every mix row gets an independently derived simulation
    seed (a SplitMix64 scramble of the master seed and the mix name).
    All scheme columns within a row deliberately share the row seed, so
    schemes are compared on identical workloads and the parallel/serial
    scheme equivalences (3CCC = C4, 2SC3 = 3SCC) stay bit-exact in
    simulation. *)

type cell = {
  mix : string;
  scheme : string;
  ipc : float;
  elapsed_s : float;  (** Wall-clock seconds spent simulating the cell. *)
  started_s : float;
      (** Start offset from the sweep's epoch (the moment [run_cells]
          began dispatching), wall clock. *)
  worker : int;  (** Pool worker that simulated the cell (0-based). *)
  telemetry : Vliw_telemetry.Counters.snapshot option;
      (** Per-cell counter snapshot when telemetry was requested.
          Timing/worker/telemetry fields are observational: they vary
          run to run, while [ipc] is bit-deterministic. *)
}

type progress = { completed : int; total : int; last : cell }

val row_seed : seed:int64 -> string -> int64
(** The simulation seed of a mix row, a pure function of the master
    seed and the mix name. *)

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?scheme_names:string list ->
  ?mix_names:string list ->
  ?jobs:int ->
  ?progress:(progress -> unit) ->
  unit ->
  Common.grid
(** IPC of every (mix, scheme) pair. Defaults: all 4-thread schemes of
    the catalog, all Table 2 mixes, [jobs = 1]. [jobs <= 0] uses one
    worker per core. [progress] is called after every cell, serialized
    across workers. *)

val run_cells :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?scheme_names:string list ->
  ?mix_names:string list ->
  ?jobs:int ->
  ?progress:(progress -> unit) ->
  ?telemetry:bool ->
  unit ->
  string list * string list * cell array
(** Like {!run} but returns the raw cells (mix-major order) with their
    per-cell wall-clock timings, plus the resolved scheme and mix
    names. [telemetry] (default [false]) attaches a fresh counter
    registry to each cell's simulation and snapshots it into
    {!cell.telemetry}; counting is observation-only, so IPC results are
    unchanged. *)

val grid_of_cells :
  scheme_names:string list ->
  mix_names:string list ->
  cell array ->
  Common.grid
(** Fold mix-major cells into a grid. *)

val total_elapsed_s : cell array -> float
(** Sum of per-cell wall-clock times (CPU-seconds of simulation, not
    elapsed wall time when [jobs > 1]). *)

val merged_telemetry : cell array -> Vliw_telemetry.Counters.snapshot
(** Sum of all per-cell counter snapshots (cells without telemetry
    contribute nothing). *)

val chrome_trace : ?process_name:string -> cell array -> string
(** Chrome trace-event JSON of the sweep's execution timeline: one lane
    per pool worker, one slice per cell (built from [started_s] /
    [elapsed_s]), with mix/scheme/IPC as slice arguments. Load in
    Perfetto or chrome://tracing. *)

val telemetry_csv : cell array -> string list * string list list
(** (header, rows) for {!Vliw_util.Csv.write}: one row per (cell,
    counter) — columns [mix; scheme; counter; value]. Cells without
    telemetry are skipped. *)
