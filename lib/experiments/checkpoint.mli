(** Sweep checkpoint journal: crash-safe persistence of completed
    (mix, scheme) cells, so an interrupted sweep resumes instead of
    restarting.

    A journal is a plain-text file: a magic line, a [meta] header
    pinning the sweep configuration (scale, master seed, scheme and mix
    lists, telemetry flag), then one line per completed cell. IPC values
    are stored as the hex image of their IEEE-754 bits, which is what
    makes a resumed grid bit-identical to an uninterrupted run. Every
    save goes through {!Vliw_util.Atomic_io} (temp-file + rename),
    so a kill mid-save leaves the previous journal intact, never a torn
    file.

    Degraded cells (retry budget exhausted) are not journaled: resuming
    a sweep retries them rather than pinning the failure. *)

type meta = {
  scale : string;  (** {!Common.scale_name} of the sweep's scale. *)
  seed : int64;  (** Master seed. *)
  scheme_names : string list;
  mix_names : string list;
  telemetry : bool;
}
(** The sweep configuration a journal belongs to. {!Vliw_experiments.Sweep}
    refuses to resume from a journal whose [meta] differs — cells from a
    different grid must never be spliced in. *)

type record = {
  mix : string;
  scheme : string;
  row_seed : int64;  (** The row's derived simulation seed, for audit. *)
  ipc : float;
  attempts : int;  (** Simulation attempts the cell took (1 = no retry). *)
  counters : (string * int) list option;
      (** Telemetry counter snapshot, when the sweep ran with telemetry.
          Histograms are not journaled; a resumed cell restores its
          counters only. *)
}

type t = { meta : meta; records : record list }

val create : meta -> t
(** Empty journal for a sweep configuration. *)

val add : t -> record -> t
(** Append one completed cell (persist with {!save}). *)

val find : t -> mix:string -> scheme:string -> record option

val meta_equal : meta -> meta -> bool

val save : path:string -> t -> unit
(** Atomic whole-file rewrite (temp + rename). *)

val load : path:string -> (t, string) result
(** Parse a journal. Malformed cell lines are dropped (the sweep simply
    re-runs those cells); a missing file, bad magic or unparsable meta
    line is an [Error]. *)

val to_string : t -> string
(** The serialized journal text (what {!save} writes). *)
