(** Figure 6: SMT performance advantage over CSMT (4 threads), per mix
    and on average. The paper reports a 27% average, peaking at 58% for
    LLHH. *)

type data = {
  per_mix : (string * float) list;  (** Mix name, % advantage. *)
  average : float;
}

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?progress:(Sweep.progress -> unit) ->
  unit ->
  data

val of_grid : Common.grid -> data
(** Reuse an existing grid containing 3SSS and 3CCC. *)

val render : data -> string
