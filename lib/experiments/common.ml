type scale = Quick | Default | Full

let schedule_of_scale = function
  | Quick ->
    { Vliw_sim.Multitask.timeslice = 5_000; target_instrs = 15_000; max_cycles = 40_000 }
  | Default ->
    (* Effectively a fixed 400k-cycle horizon: the instruction target is
       unreachable within it, so every scheme sees the same cycle budget
       and rates compare without truncation bias. *)
    { Vliw_sim.Multitask.timeslice = 50_000; target_instrs = 1_000_000; max_cycles = 400_000 }
  | Full ->
    {
      Vliw_sim.Multitask.timeslice = 1_000_000;
      target_instrs = 5_000_000;
      max_cycles = 20_000_000;
    }

let scale_name = function
  | Quick -> "quick"
  | Default -> "default"
  | Full -> "full"

let scale_of_name = function
  | "quick" -> Some Quick
  | "default" -> Some Default
  | "full" -> Some Full
  | _ -> None

let default_seed = 0xC5EEDL

(* Degraded sweep cells carry [nan]; every renderer funnels through here
   so they surface as "n/a" instead of a garbage number. *)
let ipc_string ?(decimals = 4) v =
  if Float.is_nan v then "n/a" else Printf.sprintf "%.*f" decimals v

let single_thread_ipc ?(scale = Default) ?(seed = default_seed) ~perfect profile =
  let config = Vliw_sim.Config.make (Vliw_merge.Scheme.thread 0) in
  let metrics =
    Vliw_sim.Multitask.run config ~perfect_mem:perfect ~seed
      ~schedule:(schedule_of_scale scale) [ profile ]
  in
  Vliw_sim.Metrics.ipc metrics

type grid = {
  scheme_names : string list;
  mix_names : string list;
  ipc : float array array;
  index : (string, int) Hashtbl.t;
      (* scheme name -> column, built once at grid construction *)
}

(* Grids are only built here so every grid carries its column lookup;
   the (mix x scheme) execution itself lives in [Sweep]. *)
let make_grid ~scheme_names ~mix_names ~ipc =
  let index = Hashtbl.create (List.length scheme_names) in
  List.iteri (fun j name -> Hashtbl.replace index name j) scheme_names;
  { scheme_names; mix_names; ipc; index }

let scheme_index grid name =
  match Hashtbl.find_opt grid.index name with
  | Some j -> j
  | None -> invalid_arg ("grid: unknown scheme " ^ name)

let grid_column grid name =
  let j = scheme_index grid name in
  Array.map (fun row -> row.(j)) grid.ipc

let grid_average grid name = Vliw_util.Stats.mean (grid_column grid name)

(* Whole-grid mean, skipping degraded (nan) cells so one failed cell
   doesn't poison a run-level summary gauge. *)
let grid_mean grid =
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (Array.iter (fun v ->
         if not (Float.is_nan v) then begin
           sum := !sum +. v;
           incr n
         end))
    grid.ipc;
  if !n = 0 then Float.nan else !sum /. float_of_int !n

let grid_csv grid =
  let header = "mix" :: grid.scheme_names in
  let rows =
    List.mapi
      (fun i mix -> mix :: Array.to_list (Array.map ipc_string grid.ipc.(i)))
      grid.mix_names
  in
  (header, rows)
